(* Tests for the polymorphic STM over the deterministic simulator:
   basic transactional semantics, conflict handling, timestamp
   extension, elastic cuts, snapshot reads, early release, contention
   policies, and whole-run history validation against the formal
   checkers. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
open Polytm

(* --- semantics & contention metadata ------------------------------------ *)

let test_semantics_module () =
  let open Semantics in
  Alcotest.(check string) "classic" "classic" (to_string Classic);
  Alcotest.(check string) "elastic" "elastic" (to_string Elastic);
  Alcotest.(check string) "snapshot" "snapshot" (to_string Snapshot);
  Alcotest.(check bool) "equal" true (equal Classic Classic);
  Alcotest.(check bool) "not equal" false (equal Classic Elastic);
  Alcotest.(check bool) "outer wins" true
    (equal (compose ~outer:Classic ~inner:Elastic) Classic);
  Alcotest.(check bool) "classic writes" true (allows_write Classic);
  Alcotest.(check bool) "snapshot read-only" false (allows_write Snapshot);
  Alcotest.(check string) "pp" "elastic" (Format.asprintf "%a" pp Elastic)

let test_contention_module () =
  Alcotest.(check string) "suicide" "suicide"
    (Contention.to_string Contention.Suicide);
  Alcotest.(check string) "greedy" "greedy"
    (Contention.to_string Contention.Greedy);
  Alcotest.(check int) "suicide never spins" 0
    (Contention.lock_spins Contention.Suicide);
  Alcotest.(check int) "polite spins as configured" 9
    (Contention.lock_spins (Contention.Polite { spins = 9 }));
  Alcotest.(check int) "suicide retries at once" 0
    (Contention.retry_pause Contention.Suicide ~attempt:3);
  let b = Contention.Backoff { base = 4; cap = 32 } in
  Alcotest.(check int) "backoff attempt 1" 4 (Contention.retry_pause b ~attempt:1);
  Alcotest.(check int) "backoff attempt 2" 8 (Contention.retry_pause b ~attempt:2);
  Alcotest.(check int) "backoff capped" 32 (Contention.retry_pause b ~attempt:10)

let test_contention_backoff_edges () =
  (* The doubling must saturate at [cap] instead of overflowing:
     [acc * 2] on a huge accumulator used to wrap negative and slip
     past the cap test, yielding a negative pause. *)
  let huge = Contention.Backoff { base = 3; cap = max_int } in
  Alcotest.(check int) "uncapped doubling saturates at cap" max_int
    (Contention.retry_pause huge ~attempt:200);
  let wide = Contention.Backoff { base = 1; cap = max_int - 1 } in
  for attempt = 1 to 300 do
    let p = Contention.retry_pause wide ~attempt in
    if p < 0 then Alcotest.failf "negative pause %d at attempt %d" p attempt
  done;
  Alcotest.(check int) "pre-overflow power of two exact" 4096
    (Contention.retry_pause wide ~attempt:13);
  let degenerate = Contention.Backoff { base = 1; cap = 1 } in
  Alcotest.(check int) "base=cap=1 pins the pause" 1
    (Contention.retry_pause degenerate ~attempt:60)

let test_contention_validation () =
  let rejected cm =
    match Contention.validate cm with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "base=0 rejected" true
    (rejected (Contention.Backoff { base = 0; cap = 8 }));
  Alcotest.(check bool) "cap<base rejected" true
    (rejected (Contention.Backoff { base = 16; cap = 4 }));
  Alcotest.(check bool) "negative spins rejected" true
    (rejected (Contention.Polite { spins = -1 }));
  Alcotest.(check bool) "greedy_after=0 rejected" true
    (rejected
       (Contention.Adaptive
          { base = 4; cap = 64; greedy_after = 0; serialize_after = 8;
            hot_abort_pct = 50 }));
  Alcotest.(check bool) "serialize before greedy rejected" true
    (rejected
       (Contention.Adaptive
          { base = 4; cap = 64; greedy_after = 8; serialize_after = 4;
            hot_abort_pct = 50 }));
  Alcotest.(check bool) "defaults validate" false
    (rejected Contention.default || rejected Contention.default_adaptive);
  (* [Stm.create] runs the validation, so a misconfigured policy dies
     at construction rather than degenerating at runtime. *)
  let construction_rejected =
    match S.create ~cm:(Contention.Backoff { base = 0; cap = 8 }) () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "create validates" true construction_rejected

let test_contention_adaptive_ladder () =
  let a = Contention.default_adaptive in
  (* greedy_after = 8, serialize_after = 24, hot_abort_pct = 50 *)
  Alcotest.(check string) "to_string" "adaptive(4,1024,g8,s24,h50%)"
    (Contention.to_string a);
  Alcotest.(check bool) "adaptive may kill" true (Contention.may_kill a);
  Alcotest.(check bool) "backoff may not kill" false
    (Contention.may_kill Contention.default);
  Alcotest.(check bool) "cautious: no kill" false
    (Contention.kills_at a ~attempt:7 ~abort_rate_pct:0);
  Alcotest.(check bool) "escalated: kills" true
    (Contention.kills_at a ~attempt:8 ~abort_rate_pct:0);
  Alcotest.(check bool) "hot instance halves the threshold" true
    (Contention.kills_at a ~attempt:4 ~abort_rate_pct:50);
  Alcotest.(check bool) "still cautious below the halved threshold" false
    (Contention.kills_at a ~attempt:3 ~abort_rate_pct:50);
  Alcotest.(check bool) "serializes past the ladder" true
    (Contention.serializes_at a ~attempt:24 ~abort_rate_pct:0);
  Alcotest.(check bool) "hot instance serializes sooner" true
    (Contention.serializes_at a ~attempt:12 ~abort_rate_pct:50);
  Alcotest.(check bool) "not before" false
    (Contention.serializes_at a ~attempt:11 ~abort_rate_pct:50);
  Alcotest.(check bool) "greedy kills but never serializes" true
    (Contention.kills_at Contention.Greedy ~attempt:1 ~abort_rate_pct:0
    && not
         (Contention.serializes_at Contention.Greedy ~attempt:1000
            ~abort_rate_pct:100));
  (* Aggressive phase retries immediately; cautious phase backs off. *)
  Alcotest.(check int) "cautious pause" 4 (Contention.retry_pause a ~attempt:1);
  Alcotest.(check int) "aggressive pause" 0 (Contention.retry_pause a ~attempt:8)

let test_tvar_ids_unique () =
  let stm = S.create () in
  let a = S.tvar stm 0 and b = S.tvar stm 0 in
  Alcotest.(check bool) "distinct ids" true (S.tvar_id a <> S.tvar_id b);
  Alcotest.(check int) "window size accessor" 2 (S.elastic_window_size stm)

(* --- basics ------------------------------------------------------------ *)

let test_read_write_commit () =
  let stm = S.create () in
  let v = S.tvar stm 1 in
  let r = S.atomically stm (fun tx -> S.read tx v) in
  Alcotest.(check int) "initial" 1 r;
  S.atomically stm (fun tx -> S.write tx v 7);
  Alcotest.(check int) "after write" 7
    (S.atomically stm (fun tx -> S.read tx v))

let test_read_own_write () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  let seen =
    S.atomically stm (fun tx ->
        S.write tx v 3;
        S.read tx v)
  in
  Alcotest.(check int) "sees own write" 3 seen

let test_multiple_writes_last_wins () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  S.atomically stm (fun tx ->
      S.write tx v 1;
      S.write tx v 2;
      S.write tx v 3);
  Alcotest.(check int) "last write" 3 (S.atomically stm (fun tx -> S.read tx v))

let test_exception_discards_effects () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  (try
     S.atomically stm (fun tx ->
         S.write tx v 42;
         raise Exit)
   with Exit -> ());
  Alcotest.(check int) "write discarded" 0
    (S.atomically stm (fun tx -> S.read tx v));
  let st = S.stats stm in
  Alcotest.(check int) "counted as abort" 1 st.S.aborts

let test_explicit_abort_exhausts_attempts () =
  let stm = S.create ~max_attempts:5 () in
  let raised =
    try S.atomically stm (fun tx -> S.abort tx)
    with S.Too_many_attempts (S.Explicit, 5) -> true
  in
  Alcotest.(check bool) "Too_many_attempts(Explicit, 5)" true raised;
  Alcotest.(check int) "five starts" 5 (S.stats stm).S.starts

let test_orelse_first_succeeds () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  let r =
    S.atomically stm (fun tx ->
        S.orelse tx
          (fun tx ->
            S.write tx v 1;
            "first")
          (fun _ -> "second"))
  in
  Alcotest.(check string) "first" "first" r;
  Alcotest.(check int) "first's write kept" 1
    (S.atomically stm (fun tx -> S.read tx v))

let test_orelse_falls_through () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  let r =
    S.atomically stm (fun tx ->
        S.orelse tx
          (fun tx ->
            S.write tx v 99;
            S.abort tx)
          (fun tx ->
            S.write tx v 2;
            "second"))
  in
  Alcotest.(check string) "second" "second" r;
  Alcotest.(check int) "first's write rolled back" 2
    (S.atomically stm (fun tx -> S.read tx v))

let test_orelse_nested_alternatives () =
  let stm = S.create () in
  let r =
    S.atomically stm (fun tx ->
        S.orelse tx
          (fun tx ->
            S.orelse tx (fun tx -> S.abort tx) (fun tx -> S.abort tx))
          (fun _ -> "fallback"))
  in
  Alcotest.(check string) "fallback" "fallback" r

let test_nested_atomically_flattens () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  S.atomically stm (fun tx ->
      S.write tx v 1;
      (* The nested block joins the outer transaction; its hint is
         overridden and no second commit happens. *)
      S.atomically stm ~sem:Semantics.Elastic (fun tx' ->
          Alcotest.(check int) "nested sees outer write" 1 (S.read tx' v);
          S.write tx' v 2));
  Alcotest.(check int) "one commit only" 1 (S.stats stm).S.commits;
  Alcotest.(check int) "nested write committed" 2
    (S.atomically stm (fun tx -> S.read tx v))

let test_tx_escape_detected () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  let escaped = ref None in
  S.atomically stm (fun tx -> escaped := Some tx);
  match !escaped with
  | None -> Alcotest.fail "tx not captured"
  | Some tx ->
      let rejected =
        try
          ignore (S.read tx v);
          false
        with S.Invalid_operation _ -> true
      in
      Alcotest.(check bool) "escaped handle rejected" true rejected

let test_snapshot_write_rejected () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  let rejected =
    try
      S.atomically stm ~sem:Semantics.Snapshot (fun tx -> S.write tx v 1);
      false
    with S.Invalid_operation _ -> true
  in
  Alcotest.(check bool) "snapshot write rejected" true rejected

let test_stats_accounting () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  for _ = 1 to 5 do
    S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
  done;
  let st = S.stats stm in
  Alcotest.(check int) "starts" 5 st.S.starts;
  Alcotest.(check int) "commits" 5 st.S.commits;
  Alcotest.(check int) "no aborts" 0 st.S.aborts;
  S.reset_stats stm;
  Alcotest.(check int) "reset" 0 (S.stats stm).S.starts

(* --- concurrency: atomicity -------------------------------------------- *)

let test_concurrent_increments_atomic () =
  for seed = 1 to 15 do
    let stm = S.create () in
    let v = S.tvar stm 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun _ () ->
                 for _ = 1 to 5 do
                   S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
                 done)))
    in
    Alcotest.(check int) "no lost updates" 15
      (S.atomically stm (fun tx -> S.read tx v))
  done

let test_bank_conservation () =
  (* Random transfers among 6 accounts: the sum is invariant, checked
     by a classic transaction at the end of every seed. *)
  let n = 6 in
  for seed = 1 to 10 do
    let stm = S.create () in
    let accounts = Array.init n (fun _ -> S.tvar stm 100) in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun t () ->
                 let rng = Polytm_util.Rng.create (seed * 100 + t) in
                 for _ = 1 to 8 do
                   let src = Polytm_util.Rng.int rng n
                   and dst = Polytm_util.Rng.int rng n
                   and amount = Polytm_util.Rng.int rng 20 in
                   S.atomically stm (fun tx ->
                       let s = S.read tx accounts.(src) in
                       S.write tx accounts.(src) (s - amount);
                       let d = S.read tx accounts.(dst) in
                       S.write tx accounts.(dst) (d + amount))
                 done)))
    in
    let total =
      S.atomically stm (fun tx ->
          Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
    in
    Alcotest.(check int) "money conserved" (n * 100) total
  done

let test_write_skew_prevented () =
  (* Classic STM must not allow write skew: two transactions each read
     both cells and write one; serializability forces x + y >= 0 to be
     maintained when each checks the sum before withdrawing. *)
  for seed = 1 to 20 do
    let stm = S.create () in
    let x = S.tvar stm 5 and y = S.tvar stm 5 in
    let withdraw cell () =
      S.atomically stm (fun tx ->
          let total = S.read tx x + S.read tx y in
          if total >= 10 then S.write tx cell (S.read tx cell - 10))
    in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel [ withdraw x; withdraw y ])
    in
    let total = S.atomically stm (fun tx -> S.read tx x + S.read tx y) in
    Alcotest.(check bool) "no write skew" true (total >= 0)
  done

(* --- timestamp extension and conflicts ---------------------------------- *)

(* Run [reader] in one virtual thread while [writer] runs between the
   reader's two phases, positioned by virtual-time delays. *)
let staged_run reader writer =
  let (), _ =
    Sim.run (fun () ->
        let a = Sim.spawn reader in
        let b =
          Sim.spawn (fun () ->
              Sim.tick 200;
              writer ())
        in
        Sim.join a;
        Sim.join b)
  in
  ()

let test_extension_avoids_abort () =
  let stm = S.create () in
  let a = S.tvar stm 0 and b = S.tvar stm 0 in
  let observed = ref (-1) in
  staged_run
    (fun () ->
      S.atomically stm (fun tx ->
          ignore (S.read tx a);
          Sim.tick 1000;
          (* b was committed meanwhile: version > rv, extension kicks
             in because a is untouched. *)
          observed := S.read tx b))
    (fun () -> S.atomically stm (fun tx -> S.write tx b 9));
  Alcotest.(check int) "read the new value" 9 !observed;
  let st = S.stats stm in
  Alcotest.(check bool) "extension happened" true (st.S.extensions >= 1);
  Alcotest.(check int) "no aborts" 0 st.S.aborts

let test_conflict_aborts_and_retries () =
  let stm = S.create () in
  let a = S.tvar stm 0 and b = S.tvar stm 0 in
  let sum = ref (-1) in
  staged_run
    (fun () ->
      S.atomically stm (fun tx ->
          let va = S.read tx a in
          Sim.tick 1000;
          (* Both a and b updated behind our back: extension fails,
             abort, and the retry sees the consistent new state. *)
          sum := va + S.read tx b))
    (fun () ->
      S.atomically stm (fun tx ->
          S.write tx a 10;
          S.write tx b 10));
  Alcotest.(check int) "retry read consistent state" 20 !sum;
  let st = S.stats stm in
  Alcotest.(check bool) "a read-invalid abort happened" true
    (st.S.read_invalid >= 1)

let test_commit_validation_catches_conflict () =
  (* The writer commits while the reader-updater still holds its old
     read: commit-time validation must abort the first attempt. *)
  let stm = S.create () in
  let a = S.tvar stm 0 and out = S.tvar stm 0 in
  staged_run
    (fun () ->
      S.atomically stm (fun tx ->
          let va = S.read tx a in
          Sim.tick 1000;
          S.write tx out (va + 1)))
    (fun () -> S.atomically stm (fun tx -> S.write tx a 5));
  Alcotest.(check int) "final out from fresh read" 6
    (S.atomically stm (fun tx -> S.read tx out));
  Alcotest.(check bool) "first attempt aborted" true
    ((S.stats stm).S.aborts >= 1)

(* --- elastic ------------------------------------------------------------ *)

let test_elastic_cut_tolerates_old_updates () =
  (* Elastic parse x1 x2 x3 (window 2), then x1 is overwritten together
     with b; reading b forces a cut, which succeeds because x1 has
     left the window.  A classic transaction aborts in the same
     scenario (checked below). *)
  let scenario sem =
    let stm = S.create () in
    let xs = Array.init 3 (fun _ -> S.tvar stm 0) in
    let b = S.tvar stm 0 in
    staged_run
      (fun () ->
        S.atomically stm ~sem (fun tx ->
            Array.iter (fun x -> ignore (S.read tx x)) xs;
            Sim.tick 1000;
            ignore (S.read tx b)))
      (fun () ->
        S.atomically stm (fun tx ->
            S.write tx xs.(0) 1;
            S.write tx b 1));
    S.stats stm
  in
  let elastic = scenario Semantics.Elastic in
  Alcotest.(check int) "elastic: no aborts" 0 elastic.S.aborts;
  Alcotest.(check bool) "elastic: cut happened" true (elastic.S.cuts >= 1);
  let classic = scenario Semantics.Classic in
  Alcotest.(check bool) "classic: aborted instead" true (classic.S.aborts >= 1)

let test_elastic_window_break_aborts () =
  (* The overwritten location is still inside the window: the cut is
     inconsistent and the elastic transaction must abort once. *)
  let stm = S.create () in
  let x = S.tvar stm 0 and b = S.tvar stm 0 in
  staged_run
    (fun () ->
      S.atomically stm ~sem:Semantics.Elastic (fun tx ->
          ignore (S.read tx x);
          Sim.tick 1000;
          ignore (S.read tx b)))
    (fun () ->
      S.atomically stm (fun tx ->
          S.write tx x 1;
          S.write tx b 1));
  Alcotest.(check bool) "window-broken abort" true
    ((S.stats stm).S.window_broken >= 1)

let test_elastic_write_closes_transaction () =
  (* After its first write an elastic transaction validates reads
     classically: a conflicting update after the write aborts it. *)
  let stm = S.create () in
  let x = S.tvar stm 0 and y = S.tvar stm 0 and b = S.tvar stm 0 in
  staged_run
    (fun () ->
      S.atomically stm ~sem:Semantics.Elastic (fun tx ->
          ignore (S.read tx x);
          S.write tx y 1;
          let before = S.read tx b in
          Sim.tick 1000;
          (* x changes now; reading b again must not cut. *)
          let after = S.read tx b in
          ignore (before + after)))
    (fun () ->
      S.atomically stm (fun tx ->
          S.write tx x 7;
          S.write tx b 7));
  let st = S.stats stm in
  Alcotest.(check int) "no cuts after a write" 0 st.S.cuts;
  Alcotest.(check bool) "aborted classically" true (st.S.read_invalid >= 1)

let test_elastic_read_only_commits () =
  let stm = S.create () in
  let v = S.tvar stm 3 in
  let r = S.atomically stm ~sem:Semantics.Elastic (fun tx -> S.read tx v) in
  Alcotest.(check int) "value" 3 r;
  Alcotest.(check int) "committed" 1 (S.stats stm).S.commits

(* --- snapshot ----------------------------------------------------------- *)

let test_snapshot_reads_consistent_past () =
  (* The snapshot starts before an update of (a, b); reading a first,
     then b after the update commits, must yield the OLD b to stay
     consistent with the old a. *)
  let stm = S.create () in
  let a = S.tvar stm 1 and b = S.tvar stm 1 in
  let pair = ref (0, 0) in
  staged_run
    (fun () ->
      S.atomically stm ~sem:Semantics.Snapshot (fun tx ->
          let va = S.read tx a in
          Sim.tick 1000;
          let vb = S.read tx b in
          pair := (va, vb)))
    (fun () ->
      S.atomically stm (fun tx ->
          S.write tx a 2;
          S.write tx b 2));
  Alcotest.(check (pair int int)) "old consistent pair" (1, 1) !pair;
  let st = S.stats stm in
  Alcotest.(check bool) "served from backup version" true (st.S.stale_reads >= 1);
  Alcotest.(check int) "snapshot did not abort" 0 st.S.aborts

let test_snapshot_never_aborts_updates () =
  (* Updaters keep committing at full speed while a snapshot runs: the
     updater must see zero aborts (cf. Section 5.1: snapshot size never
     invalidates add/remove). *)
  let stm = S.create () in
  let xs = Array.init 4 (fun _ -> S.tvar stm 0) in
  let (), _ =
    Sim.run (fun () ->
        let updater =
          Sim.spawn (fun () ->
              for i = 1 to 10 do
                S.atomically stm (fun tx -> S.write tx xs.(i mod 4) i)
              done)
        in
        let snapshotter =
          Sim.spawn (fun () ->
              for _ = 1 to 3 do
                ignore
                  (S.atomically stm ~sem:Semantics.Snapshot (fun tx ->
                       Array.fold_left (fun acc x -> acc + S.read tx x) 0 xs))
              done)
        in
        Sim.join updater;
        Sim.join snapshotter)
  in
  let st = S.stats stm in
  Alcotest.(check int) "updaters never aborted" 0
    (st.S.read_invalid + st.S.lock_busy)

let test_snapshot_too_old_aborts_and_recovers () =
  (* Two successive updates exhaust both stored versions: a snapshot
     that started before them aborts, then succeeds on retry with a
     fresh upper bound. *)
  let stm = S.create () in
  let b = S.tvar stm 0 in
  let seen = ref (-1) in
  staged_run
    (fun () ->
      S.atomically stm ~sem:Semantics.Snapshot (fun tx ->
          Sim.tick 2000;
          seen := S.read tx b))
    (fun () ->
      S.atomically stm (fun tx -> S.write tx b 1);
      S.atomically stm (fun tx -> S.write tx b 2));
  Alcotest.(check int) "retry read latest" 2 !seen;
  Alcotest.(check bool) "snapshot-too-old abort" true
    ((S.stats stm).S.snapshot_too_old >= 1)

let test_version_depth_one_disables_multiversion () =
  (* versions=1: the first concurrent update forces the snapshot to
     retry (no backup to fall back on); it still completes with a
     fresh upper bound. *)
  let stm = S.create ~versions:1 () in
  let a = S.tvar stm 1 and b = S.tvar stm 1 in
  let pair = ref (0, 0) in
  staged_run
    (fun () ->
      S.atomically stm ~sem:Semantics.Snapshot (fun tx ->
          let va = S.read tx a in
          Sim.tick 1000;
          let vb = S.read tx b in
          pair := (va, vb)))
    (fun () ->
      S.atomically stm (fun tx ->
          S.write tx a 2;
          S.write tx b 2));
  Alcotest.(check (pair int int)) "retried to the new state" (2, 2) !pair;
  let st = S.stats stm in
  Alcotest.(check bool) "aborted at least once" true
    (st.S.snapshot_too_old >= 1);
  Alcotest.(check int) "no stale reads possible" 0 st.S.stale_reads

let test_version_depth_four_survives_double_update () =
  (* The scenario that exhausts the paper's 2 versions (two successive
     updates during the snapshot) commits without retrying at k=4. *)
  let run versions =
    let stm = S.create ~versions () in
    let b = S.tvar stm 0 in
    let seen = ref (-1) in
    staged_run
      (fun () ->
        S.atomically stm ~sem:Semantics.Snapshot (fun tx ->
            Sim.tick 2000;
            seen := S.read tx b))
      (fun () ->
        S.atomically stm (fun tx -> S.write tx b 1);
        S.atomically stm (fun tx -> S.write tx b 2));
    ((S.stats stm).S.snapshot_too_old, !seen)
  in
  let aborts2, seen2 = run 2 in
  Alcotest.(check bool) "k=2 aborts on double update" true (aborts2 >= 1);
  Alcotest.(check int) "k=2 retries to latest" 2 seen2;
  let aborts4, seen4 = run 4 in
  Alcotest.(check int) "k=4 never aborts" 0 aborts4;
  Alcotest.(check int) "k=4 reads its consistent past" 0 seen4

(* --- early release ------------------------------------------------------ *)

let test_early_release_avoids_false_conflict () =
  let scenario ~release =
    let stm = S.create () in
    let x = S.tvar stm 0 and b = S.tvar stm 0 and out = S.tvar stm 0 in
    staged_run
      (fun () ->
        S.atomically stm (fun tx ->
            ignore (S.read tx x);
            if release then S.release tx x;
            Sim.tick 1000;
            S.write tx out (S.read tx b)))
      (fun () ->
        S.atomically stm (fun tx ->
            S.write tx x 1;
            S.write tx b 1));
    (S.stats stm).S.aborts
  in
  Alcotest.(check int) "released: no abort" 0 (scenario ~release:true);
  Alcotest.(check bool) "kept: aborts" true (scenario ~release:false >= 1)

(* --- contention managers ------------------------------------------------ *)

let cm_workload cm seed =
  let stm = S.create ~cm () in
  let v = S.tvar stm 0 in
  let (), _ =
    Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
        R.parallel
          (List.init 4 (fun _ () ->
               for _ = 1 to 4 do
                 S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
               done)))
  in
  S.atomically stm (fun tx -> S.read tx v)

let test_contention_policies_all_correct () =
  List.iter
    (fun cm ->
      for seed = 1 to 8 do
        Alcotest.(check int)
          (Contention.to_string cm)
          16 (cm_workload cm seed)
      done)
    [
      Contention.Suicide;
      Contention.Backoff { base = 4; cap = 64 };
      Contention.Polite { spins = 8 };
      Contention.Greedy;
    ]

(* --- liveness: serial fallback, budgets, deadlines ----------------------- *)

let test_serial_fallback_guarantees_commit () =
  (* With a one-attempt budget every conflict abort exhausts it, so
     under the default [`Serialize] policy every increment must still
     land — via the token — and the books must balance: one serial
     commit per exhaustion, no [Too_many_attempts] anywhere. *)
  let total_serial = ref 0 in
  for seed = 1 to 8 do
    let stm = S.create ~max_attempts:1 () in
    let v = S.tvar stm 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 4 (fun _ () ->
                 for _ = 1 to 4 do
                   S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
                 done)))
    in
    Alcotest.(check int)
      (Printf.sprintf "all increments commit (seed %d)" seed)
      16
      (S.atomically stm (fun tx -> S.read tx v));
    let st = S.stats stm in
    Alcotest.(check int)
      (Printf.sprintf "one serial commit per exhaustion (seed %d)" seed)
      st.S.budget_exhaustions st.S.serial_commits;
    Alcotest.(check bool)
      (Printf.sprintf "lock quiescent (seed %d)" seed)
      false (S.tvar_locked v);
    total_serial := !total_serial + st.S.serial_commits
  done;
  Alcotest.(check bool) "the fallback actually fired across seeds" true
    (!total_serial > 0)

let test_on_exhaustion_raise_restores_old_behaviour () =
  let escapes = ref 0 and committed = ref 0 in
  for seed = 1 to 8 do
    let stm = S.create ~max_attempts:1 ~on_exhaustion:`Raise () in
    let v = S.tvar stm 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 4 (fun _ () ->
                 for _ = 1 to 4 do
                   try S.atomically stm (fun tx ->
                       S.write tx v (S.read tx v + 1))
                   with S.Too_many_attempts (_, 1) -> incr escapes
                 done)))
    in
    committed := !committed + S.atomically stm (fun tx -> S.read tx v);
    Alcotest.(check int)
      (Printf.sprintf "no serial commits under `Raise (seed %d)" seed)
      0 (S.stats stm).S.serial_commits
  done;
  Alcotest.(check bool) "some transactions were dropped" true (!escapes > 0);
  Alcotest.(check int) "every op either committed or escaped" (8 * 16)
    (!committed + !escapes)

let test_try_atomically_outcomes () =
  let stm = S.create ~max_attempts:100 () in
  let v = S.tvar stm 0 in
  (match S.try_atomically stm (fun tx -> S.write tx v 7; "ok") with
  | S.Committed s -> Alcotest.(check string) "committed result" "ok" s
  | _ -> Alcotest.fail "expected Committed");
  Alcotest.(check int) "committed write visible" 7
    (S.atomically stm (fun tx -> S.read tx v));
  (* Budget exhaustion comes back as data — never as an exception, and
     never via the serial fallback (which could not commit an explicit
     abort anyway). *)
  (match S.try_atomically ~budget:3 stm (fun tx -> S.abort tx) with
  | S.Exhausted { reason = S.Explicit; attempts = 3 } -> ()
  | _ -> Alcotest.fail "expected Exhausted{Explicit; 3}");
  let st = S.stats stm in
  Alcotest.(check int) "exhaustion counted" 1 st.S.budget_exhaustions;
  Alcotest.(check int) "no serial commit" 0 st.S.serial_commits;
  (* A deadline in the past is noticed at the first abort boundary. *)
  (match S.try_atomically ~deadline:0 stm (fun tx -> S.abort tx) with
  | S.Deadline_exceeded { reason = S.Explicit; attempts = 1 } -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded after one attempt");
  (* A deadline never interrupts a committing attempt. *)
  (match S.try_atomically ~deadline:0 stm (fun tx -> S.read tx v) with
  | S.Committed 7 -> ()
  | _ -> Alcotest.fail "expected Committed despite stale deadline")

let test_budget_overrides_max_attempts () =
  let stm = S.create ~max_attempts:100 () in
  let raised =
    try S.atomically ~budget:2 stm (fun tx -> S.abort tx)
    with S.Too_many_attempts (S.Explicit, 2) -> true
  in
  Alcotest.(check bool) "per-call budget capped the retries" true raised;
  Alcotest.(check int) "two starts" 2 (S.stats stm).S.starts

let test_serial_fallback_respects_hooks () =
  (* A transaction that escalates to the serial fallback must still run
     its finalisers exactly once, after the token is released (a hook
     may itself run a transaction, which would deadlock against a
     still-held token). *)
  let fired = ref 0 in
  for seed = 1 to 8 do
    let stm = S.create ~max_attempts:1 () in
    let v = S.tvar stm 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun _ () ->
                 for _ = 1 to 3 do
                   S.atomically stm (fun tx ->
                       S.on_cleanup tx (fun () ->
                           (* re-entering the STM from the hook: must
                              not deadlock on the serial token *)
                           incr fired;
                           ignore (S.atomically stm (fun tx -> S.read tx v)));
                       S.write tx v (S.read tx v + 1))
                 done)))
    in
    Alcotest.(check int)
      (Printf.sprintf "all committed (seed %d)" seed)
      9
      (S.atomically stm (fun tx -> S.read tx v))
  done;
  Alcotest.(check bool) "finalisers ran" true (!fired >= 8 * 9)

(* --- the Greedy spin-loop kill regression -------------------------------- *)

(* The mutual-wait schedule from the bug report, pinned by virtual-time
   delays under the deterministic event-driven scheduler:

     V (serial 0, oldest)    increments A;
     X (serial 1)            increments A and Z;
     W (serial 2, youngest)  increments C1..Cn and Z — a wide write
                             set whose highest-id lock, Z, stays held
                             from the end of its acquisition phase to
                             the end of its write-back.

   Tuned so that X enters commit, locks A, and starts waiting on Z
   just after W passed its commit-time kill check; being older than W,
   X requests W's death (a no-op — W already checked) and keeps
   waiting.  V then arrives at A, finds it locked by X, exhausts its
   spin budget and — oldest of all — kills X, then waits for A.

   That is the mutual wait: V waits on X's lock while X, already
   killed, waits behind W.  The fixed spin loop checks the victim's
   own flag each iteration, so X aborts [Killed] at once and V's read
   of A completes within a few ticks of the kill.  The pre-fix loop
   only consulted the flag at commit time: X kept spinning for W's
   whole write-back window, V stalled behind it for hundreds of ticks,
   and the abort was only attributed at the very end.  The stall is
   the observable: [v_done] (the virtual time at which V's read of A
   finally returned) blows past [stall_bound] on the pre-fix code. *)
let greedy_spin_kill_scenario ~n_hot ~body_v ~body_x =
  let stm = S.create ~cm:Contention.Greedy () in
  let a = S.tvar stm 0 in
  let cs = Array.init n_hot (fun _ -> S.tvar stm 0) in
  let z = S.tvar stm 0 in
  let incr tx v = S.write tx v (S.read tx v + 1) in
  let v_done = ref (-1) in
  let (), _ =
    Sim.run (fun () ->
        R.parallel
          [
            (fun () ->
              (* V: oldest; delays inside its body so its read of A
                 lands while X holds A's lock. *)
              S.atomically stm (fun tx ->
                  Sim.tick body_v;
                  let va = S.read tx a in
                  if !v_done < 0 then v_done := Sim.now ();
                  S.write tx a (va + 1)));
            (fun () ->
              Sim.tick 1;
              (* X: middle age; locks A, then waits on Z behind W. *)
              S.atomically stm (fun tx ->
                  Sim.tick body_x;
                  incr tx a;
                  incr tx z));
            (fun () ->
              Sim.tick 2;
              (* W: youngest; Z is its highest lock id, so Z stays
                 locked for the entire write-back. *)
              S.atomically stm (fun tx ->
                  Array.iter (incr tx) cs;
                  incr tx z));
          ])
  in
  let final name v expect =
    Alcotest.(check int) name expect (S.atomically stm (fun tx -> S.read tx v))
  in
  final "a: both increments survive" a 2;
  final "z: both increments survive" z 2;
  (S.stats stm, !v_done)

let test_greedy_spin_loop_observes_kill () =
  (* Delays tuned so V reaches A two ticks into X's wait on Z; on the
     fixed code V's read completes at tick ~316, on the pre-fix code
     only at ~429 (after W's whole write-back).  370 splits the two
     with ~55 ticks of margin on either side. *)
  let stall_bound = 370 in
  let st, v_done =
    greedy_spin_kill_scenario ~n_hot:40 ~body_v:295 ~body_x:275
  in
  Alcotest.(check bool)
    (Format.asprintf "victim aborted Killed (stats: %a)" S.pp_stats st)
    true (st.S.killed >= 1);
  Alcotest.(check bool)
    (Printf.sprintf
       "killer unblocked promptly (v_done=%d, bound=%d): the victim must \
        notice its own kill while spinning, not at commit time"
       v_done stall_bound)
    true
    (v_done >= 0 && v_done < stall_bound)

(* --- exhaustive model checking ------------------------------------------ *)

let test_stm_increments_model_checked () =
  (* Every schedule of two concurrent transactional increments must
     preserve both increments.  Livelocking schedules (one transaction
     aborted forever by an unfair scheduler) are pruned by the step
     limit; explored schedules must all be correct. *)
  let program () =
    let stm = S.create ~cm:Contention.Suicide () in
    let v = S.tvar stm 0 in
    let incr () = S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1)) in
    let t1 = Sim.spawn incr and t2 = Sim.spawn incr in
    Sim.join t1;
    Sim.join t2;
    assert (S.atomically stm (fun tx -> S.read tx v) = 2)
  in
  let outcome =
    Polytm_runtime.Explore.check ~max_executions:40_000 ~max_depth:40
      ~step_limit:600 program
  in
  Alcotest.(check bool) "explored a large schedule set" true
    (outcome.Polytm_runtime.Explore.executions > 500)

let test_stm_elastic_vs_classic_model_checked () =
  (* An elastic read-only parse concurrent with a classic update:
     under every schedule the parse must return one of the sums a
     serial piece-wise execution could produce. *)
  let program () =
    let stm = S.create ~cm:Contention.Suicide () in
    let a = S.tvar stm 0 and b = S.tvar stm 0 in
    let parser_sum = ref 0 in
    let t1 =
      Sim.spawn (fun () ->
          parser_sum :=
            S.atomically stm ~sem:Semantics.Elastic (fun tx ->
                S.read tx a + S.read tx b))
    in
    let t2 =
      Sim.spawn (fun () ->
          S.atomically stm (fun tx ->
              S.write tx a 1;
              S.write tx b 1))
    in
    Sim.join t1;
    Sim.join t2;
    (* A cut between the two reads may observe (0,1); the atomic pairs
       (0,0) and (1,1) are sums 0 and 2; (1,0) — new a, old b — is
       impossible because the writer commits both together and the
       elastic window catches the inversion. *)
    assert (List.mem !parser_sum [ 0; 1; 2 ])
  in
  let outcome =
    Polytm_runtime.Explore.check ~max_executions:40_000 ~max_depth:40
      ~step_limit:600 program
  in
  Alcotest.(check bool) "explored schedules" true
    (outcome.Polytm_runtime.Explore.executions > 100)

(* --- recorded histories vs the formal checkers -------------------------- *)

let to_history events aborted =
  let open Polytm_history in
  History.make ~aborted
    (List.map
       (fun e ->
         {
           History.tx = e.S.rec_tx;
           action =
             (if e.S.rec_write then History.Write e.S.rec_loc
              else History.Read e.S.rec_loc);
         })
       events)

let test_recorded_histories_are_opaque () =
  (* Random concurrent classic transactions over 3 variables: every
     recorded history must satisfy the opacity checker. *)
  for seed = 1 to 12 do
    let stm = S.create () in
    let vars = Array.init 3 (fun _ -> S.tvar stm 0) in
    S.record stm true;
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun t () ->
                 let rng = Polytm_util.Rng.create (seed * 31 + t) in
                 for _ = 1 to 3 do
                   S.atomically stm (fun tx ->
                       let a = vars.(Polytm_util.Rng.int rng 3)
                       and b = vars.(Polytm_util.Rng.int rng 3) in
                       let v = S.read tx a in
                       if Polytm_util.Rng.bool rng then S.write tx b (v + 1))
                 done)))
    in
    S.record stm false;
    let h = to_history (S.recorded_events stm) (S.recorded_aborted stm) in
    Alcotest.(check bool)
      (Printf.sprintf "opaque (seed %d)" seed)
      true
      (Polytm_history.Opacity.accepts h)
  done

let test_recorded_elastic_histories_accepted () =
  (* Elastic parses mixed with classic updates: recorded histories must
     satisfy the elastic-opacity checker with the elastic serials cut. *)
  for seed = 1 to 12 do
    let stm = S.create () in
    let vars = Array.init 4 (fun _ -> S.tvar stm 0) in
    S.record stm true;
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            [
              (fun () ->
                for _ = 1 to 2 do
                  ignore
                    (S.atomically stm ~sem:Semantics.Elastic (fun tx ->
                         Array.fold_left (fun acc v -> acc + S.read tx v) 0 vars))
                done);
              (fun () ->
                let rng = Polytm_util.Rng.create seed in
                for _ = 1 to 3 do
                  S.atomically stm (fun tx ->
                      let v = vars.(Polytm_util.Rng.int rng 4) in
                      S.write tx v (S.read tx v + 1))
                done);
            ])
    in
    S.record stm false;
    let events = S.recorded_events stm in
    let elastic_serials =
      List.sort_uniq compare
        (List.filter_map
           (fun e ->
             if e.S.rec_sem = Semantics.Elastic then Some e.S.rec_tx else None)
           events)
    in
    let h = to_history events (S.recorded_aborted stm) in
    Alcotest.(check bool)
      (Printf.sprintf "elastic-opaque (seed %d)" seed)
      true
      (Polytm_history.Elastic.accepts ~elastic:elastic_serials h)
  done

let suite =
  ( "stm",
    [
      Alcotest.test_case "semantics module" `Quick test_semantics_module;
      Alcotest.test_case "contention module" `Quick test_contention_module;
      Alcotest.test_case "contention backoff edges" `Quick
        test_contention_backoff_edges;
      Alcotest.test_case "contention validation" `Quick
        test_contention_validation;
      Alcotest.test_case "contention adaptive ladder" `Quick
        test_contention_adaptive_ladder;
      Alcotest.test_case "tvar ids unique" `Quick test_tvar_ids_unique;
      Alcotest.test_case "read/write/commit" `Quick test_read_write_commit;
      Alcotest.test_case "read own write" `Quick test_read_own_write;
      Alcotest.test_case "last write wins" `Quick test_multiple_writes_last_wins;
      Alcotest.test_case "exception discards effects" `Quick
        test_exception_discards_effects;
      Alcotest.test_case "explicit abort exhausts" `Quick
        test_explicit_abort_exhausts_attempts;
      Alcotest.test_case "orelse first succeeds" `Quick test_orelse_first_succeeds;
      Alcotest.test_case "orelse falls through" `Quick test_orelse_falls_through;
      Alcotest.test_case "orelse nests" `Quick test_orelse_nested_alternatives;
      Alcotest.test_case "nested atomically flattens" `Quick
        test_nested_atomically_flattens;
      Alcotest.test_case "escaped tx rejected" `Quick test_tx_escape_detected;
      Alcotest.test_case "snapshot write rejected" `Quick
        test_snapshot_write_rejected;
      Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
      Alcotest.test_case "concurrent increments atomic" `Quick
        test_concurrent_increments_atomic;
      Alcotest.test_case "bank conservation" `Quick test_bank_conservation;
      Alcotest.test_case "write skew prevented" `Quick test_write_skew_prevented;
      Alcotest.test_case "extension avoids abort" `Quick test_extension_avoids_abort;
      Alcotest.test_case "conflict aborts and retries" `Quick
        test_conflict_aborts_and_retries;
      Alcotest.test_case "commit validation" `Quick
        test_commit_validation_catches_conflict;
      Alcotest.test_case "elastic cut tolerates old updates" `Quick
        test_elastic_cut_tolerates_old_updates;
      Alcotest.test_case "elastic window break aborts" `Quick
        test_elastic_window_break_aborts;
      Alcotest.test_case "elastic write closes" `Quick
        test_elastic_write_closes_transaction;
      Alcotest.test_case "elastic read-only commits" `Quick
        test_elastic_read_only_commits;
      Alcotest.test_case "snapshot consistent past" `Quick
        test_snapshot_reads_consistent_past;
      Alcotest.test_case "snapshot never aborts updates" `Quick
        test_snapshot_never_aborts_updates;
      Alcotest.test_case "snapshot too old recovers" `Quick
        test_snapshot_too_old_aborts_and_recovers;
      Alcotest.test_case "versions=1 disables multiversion" `Quick
        test_version_depth_one_disables_multiversion;
      Alcotest.test_case "versions=4 survives double update" `Quick
        test_version_depth_four_survives_double_update;
      Alcotest.test_case "early release" `Quick
        test_early_release_avoids_false_conflict;
      Alcotest.test_case "contention policies correct" `Quick
        test_contention_policies_all_correct;
      Alcotest.test_case "serial fallback guarantees commit" `Quick
        test_serial_fallback_guarantees_commit;
      Alcotest.test_case "on_exhaustion `Raise" `Quick
        test_on_exhaustion_raise_restores_old_behaviour;
      Alcotest.test_case "try_atomically outcomes" `Quick
        test_try_atomically_outcomes;
      Alcotest.test_case "budget overrides max_attempts" `Quick
        test_budget_overrides_max_attempts;
      Alcotest.test_case "serial fallback runs hooks" `Quick
        test_serial_fallback_respects_hooks;
      Alcotest.test_case "greedy spin loop observes kill" `Quick
        test_greedy_spin_loop_observes_kill;
      Alcotest.test_case "increments model-checked" `Quick
        test_stm_increments_model_checked;
      Alcotest.test_case "elastic parse model-checked" `Quick
        test_stm_elastic_vs_classic_model_checked;
      Alcotest.test_case "recorded histories opaque" `Quick
        test_recorded_histories_are_opaque;
      Alcotest.test_case "recorded elastic histories accepted" `Quick
        test_recorded_elastic_histories_accepted;
    ] )
