(* Wire-codec tests: qcheck round-trips through the incremental
   decoder at adversarial chunk boundaries, plus malformed-frame fuzz.

   The properties the session layer relies on:
   - encode/decode is the identity on requests and responses,
     regardless of how the byte stream is sliced into feeds;
   - a malformed frame *body* surfaces as [`Bad] and consumes exactly
     its frame — the next frame decodes normally (no desync);
   - only broken framing yields [`Corrupt], and it latches;
   - no input, however hostile, makes the decoder raise. *)

module Wire = Polytm_server.Wire
module Sem = Polytm.Semantics

let prop = Test_seed.to_alcotest

(* ---- generators -------------------------------------------------------- *)

let gen_kind = QCheck.Gen.oneofl [ Wire.Kmap; Wire.Kset; Wire.Kqueue ]
let gen_sem = QCheck.Gen.oneofl [ Sem.Classic; Sem.Elastic; Sem.Snapshot ]

(* Structure names and values are bulk-encoded, so arbitrary bytes —
   newlines, '~', '\000', protocol metacharacters — must round-trip. *)
let gen_blob =
  QCheck.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 40))

let gen_key = QCheck.Gen.(frequency [ (9, small_signed_int); (1, int) ])

let gen_cmd =
  let open QCheck.Gen in
  frequency
    [
      (1, return Wire.Ping);
      (2, map2 (fun k n -> Wire.New (k, n)) gen_kind gen_blob);
      (3, map2 (fun s k -> Wire.Get (s, k)) gen_blob gen_key);
      (3, map3 (fun s k v -> Wire.Put (s, k, v)) gen_blob gen_key gen_blob);
      (2, map2 (fun s k -> Wire.Del (s, k)) gen_blob gen_key);
      (2, map2 (fun s k -> Wire.Contains (s, k)) gen_blob gen_key);
      (2, map2 (fun s k -> Wire.Add (s, k)) gen_blob gen_key);
      (2, map2 (fun s k -> Wire.Remove (s, k)) gen_blob gen_key);
      (1, map (fun s -> Wire.Size s) gen_blob);
      (1, map (fun s -> Wire.Snapshot_iter s) gen_blob);
      (2, map2 (fun s v -> Wire.Enq (s, v)) gen_blob gen_blob);
      (1, map (fun s -> Wire.Deq s) gen_blob);
      (1, return Wire.Multi);
      (1, return Wire.Multi_end);
      ( 1,
        map2
          (fun b d -> Wire.Debug_abort { budget = b; deadline_us = d })
          (opt small_nat) (opt small_nat) );
    ]

let gen_request =
  QCheck.Gen.(
    map2 (fun hint cmd -> { Wire.hint; cmd }) (opt gen_sem) gen_cmd)

let gen_err_code =
  QCheck.Gen.oneofl
    [
      Wire.Proto; Wire.Busy; Wire.Deadline; Wire.Exhausted; Wire.No_struct;
      Wire.Bad_op; Wire.Sem_violation;
    ]

(* Simple/Error payloads are line-delimited, so no newlines there. *)
let gen_line =
  QCheck.Gen.(
    string_size ~gen:(map (fun c -> if c = '\n' then ' ' else c) printable)
      (0 -- 30))

let gen_response =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let leaf =
            frequency
              [
                (2, map (fun s -> Wire.Simple s) gen_line);
                (3, map (fun i -> Wire.Int i) int);
                (3, map (fun s -> Wire.Bulk s) gen_blob);
                (1, return Wire.Nil);
                ( 2,
                  map2 (fun c m -> Wire.Error (c, m)) gen_err_code gen_line );
              ]
          in
          if n <= 0 then leaf
          else
            frequency
              [
                (4, leaf);
                ( 1,
                  map
                    (fun l -> Wire.Array l)
                    (list_size (0 -- 4) (self (n / 4))) );
              ])
        (min n 20))

let arb_request = QCheck.make ~print:(fun r ->
    let b = Buffer.create 64 in
    Wire.write_request b r;
    String.escaped (Buffer.contents b))
    gen_request

let arb_response = QCheck.make ~print:(fun r ->
    let b = Buffer.create 64 in
    Wire.write_response b r;
    String.escaped (Buffer.contents b))
    gen_response

(* ---- helpers ----------------------------------------------------------- *)

let encode_requests rs =
  let b = Buffer.create 256 in
  List.iter (Wire.write_request b) rs;
  Buffer.contents b

let encode_responses rs =
  let b = Buffer.create 256 in
  List.iter (Wire.write_response b) rs;
  Buffer.contents b

(* Feed [s] in chunks whose boundaries come from [cuts] (positions),
   pulling every available item after each feed — the decoder must
   produce the same items no matter where the stream is sliced. *)
let decode_chunked next cuts s =
  let dec = Wire.Decoder.create () in
  let items = ref [] in
  let dead = ref false in
  let rec drain () =
    if not !dead then
      match next dec with
      | `Ok v ->
          items := `Ok v :: !items;
          drain ()
      | `Bad m ->
          items := `Bad m :: !items;
          drain ()
      | `Await -> ()
      | `Corrupt m ->
          items := `Corrupt m :: !items;
          dead := true
  in
  let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < String.length s) cuts) in
  let bounds = (0 :: cuts) @ [ String.length s ] in
  let rec feed = function
    | a :: (b :: _ as rest) ->
        Wire.Decoder.feed_string dec (String.sub s a (b - a));
        drain ();
        feed rest
    | _ -> ()
  in
  feed bounds;
  List.rev !items

let oks items =
  List.filter_map (function `Ok v -> Some v | _ -> None) items

(* ---- properties -------------------------------------------------------- *)

let request_roundtrip =
  QCheck.Test.make ~name:"request round-trips at any chunking" ~count:500
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 5) arb_request)
        (list_of_size Gen.(0 -- 8) small_nat))
    (fun (reqs, cuts) ->
      let s = encode_requests reqs in
      let items =
        decode_chunked Wire.Decoder.next_request
          (List.map (fun c -> c mod max 1 (String.length s)) cuts)
          s
      in
      oks items = reqs && List.length items = List.length reqs)

let response_roundtrip =
  QCheck.Test.make ~name:"response round-trips at any chunking" ~count:500
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 5) arb_response)
        (list_of_size Gen.(0 -- 8) small_nat))
    (fun (resps, cuts) ->
      let s = encode_responses resps in
      let items =
        decode_chunked Wire.Decoder.next_response
          (List.map (fun c -> c mod max 1 (String.length s)) cuts)
          s
      in
      oks items = resps && List.length items = List.length resps)

(* Byte-at-a-time is the worst-case chunking; run it separately so a
   failure names it. *)
let request_roundtrip_bytewise =
  QCheck.Test.make ~name:"request round-trips fed byte by byte" ~count:200
    (QCheck.make gen_request)
    (fun req ->
      let s = encode_requests [ req ] in
      let cuts = List.init (String.length s) (fun i -> i) in
      oks (decode_chunked Wire.Decoder.next_request cuts s) = [ req ])

(* A frame whose *body* is garbage must yield [`Bad] (or, for byte
   soup that happens to parse, [`Ok]) and leave the stream synced: the
   valid frame behind it always decodes. *)
let bad_body_no_desync =
  QCheck.Test.make ~name:"malformed body never desyncs the stream" ~count:500
    QCheck.(pair (string_gen_of_size Gen.(0 -- 40) Gen.(map Char.chr (0 -- 255))) (QCheck.make gen_request))
    (fun (garbage, req) ->
      let b = Buffer.create 64 in
      Buffer.add_string b (Printf.sprintf "#%d\n" (String.length garbage));
      Buffer.add_string b garbage;
      Wire.write_request b req;
      let items =
        decode_chunked Wire.Decoder.next_request [] (Buffer.contents b)
      in
      match items with
      | [ `Bad _; `Ok r ] -> r = req
      | [ `Ok _; `Ok r ] -> r = req (* garbage parsed; still synced *)
      | _ -> false)

(* No byte soup may raise or loop: every prefix of random bytes must
   decode to a finite item list ending in Await or Corrupt. *)
let fuzz_total =
  QCheck.Test.make ~name:"decoder is total on random bytes" ~count:1000
    QCheck.(string_gen_of_size Gen.(0 -- 200) Gen.(map Char.chr (0 -- 255)))
    (fun s ->
      let items = decode_chunked Wire.Decoder.next_request [ 7; 23 ] s in
      (* at most one Corrupt, and only as the last item *)
      let rec check = function
        | [] -> true
        | `Corrupt _ :: rest -> rest = []
        | _ :: rest -> check rest
      in
      check items)

(* ---- unit tests -------------------------------------------------------- *)

let items_pp = function
  | `Ok _ -> "Ok"
  | `Bad _ -> "Bad"
  | `Await -> "Await"
  | `Corrupt _ -> "Corrupt"

let shape dec =
  match Wire.Decoder.next_request dec with r -> items_pp r

let test_corrupt_header_latches () =
  let dec = Wire.Decoder.create () in
  Wire.Decoder.feed_string dec "XYZ";
  Alcotest.(check string) "corrupt" "Corrupt" (shape dec);
  (* a perfectly valid frame afterwards cannot revive the stream *)
  let b = Buffer.create 32 in
  Wire.write_request b { Wire.hint = None; cmd = Wire.Ping };
  Wire.Decoder.feed_string dec (Buffer.contents b);
  Alcotest.(check string) "still corrupt" "Corrupt" (shape dec)

let test_oversized_frame_is_corrupt () =
  let dec = Wire.Decoder.create ~max_frame:64 () in
  Wire.Decoder.feed_string dec "#100000\n";
  Alcotest.(check string) "corrupt" "Corrupt" (shape dec)

let test_header_without_length () =
  let dec = Wire.Decoder.create () in
  Wire.Decoder.feed_string dec "#\n";
  Alcotest.(check string) "corrupt" "Corrupt" (shape dec)

let test_partial_header_awaits () =
  let dec = Wire.Decoder.create () in
  Wire.Decoder.feed_string dec "#12";
  Alcotest.(check string) "await" "Await" (shape dec)

let test_bad_arity_is_bad_not_corrupt () =
  let dec = Wire.Decoder.create () in
  (* well-framed, parses as fields, but GET wants two arguments *)
  let body = "*2\n$3\nGET\n$1\nm\n" in
  Wire.Decoder.feed_string dec (Printf.sprintf "#%d\n%s" (String.length body) body);
  Alcotest.(check string) "bad" "Bad" (shape dec);
  Alcotest.(check string) "then empty" "Await" (shape dec)

let test_trailing_bytes_rejected () =
  let dec = Wire.Decoder.create () in
  let body = "*1\n$4\nPING\nextra" in
  Wire.Decoder.feed_string dec (Printf.sprintf "#%d\n%s" (String.length body) body);
  Alcotest.(check string) "bad" "Bad" (shape dec)

let test_newline_in_simple_rejected () =
  Alcotest.check_raises "newline"
    (Invalid_argument "Wire.write_response: newline in simple string")
    (fun () ->
      Wire.write_response (Buffer.create 16) (Wire.Simple "a\nb"))

let test_nested_response_depth_bounded () =
  let dec = Wire.Decoder.create () in
  (* 12 nested singleton arrays around an int: deeper than the bound *)
  let b = Buffer.create 64 in
  for _ = 1 to 12 do
    Buffer.add_string b "*1\n"
  done;
  Buffer.add_string b ":7\n";
  let body = Buffer.contents b in
  Wire.Decoder.feed_string dec (Printf.sprintf "#%d\n%s" (String.length body) body);
  (match Wire.Decoder.next_response dec with
  | `Bad _ -> ()
  | r -> Alcotest.failf "expected Bad, got %s" (items_pp r))

let suite =
  ( "wire",
    [
      prop request_roundtrip;
      prop response_roundtrip;
      prop request_roundtrip_bytewise;
      prop bad_body_no_desync;
      prop fuzz_total;
      Alcotest.test_case "corrupt header latches" `Quick
        test_corrupt_header_latches;
      Alcotest.test_case "oversized frame is corrupt" `Quick
        test_oversized_frame_is_corrupt;
      Alcotest.test_case "header without length" `Quick
        test_header_without_length;
      Alcotest.test_case "partial header awaits" `Quick
        test_partial_header_awaits;
      Alcotest.test_case "bad arity is Bad, not Corrupt" `Quick
        test_bad_arity_is_bad_not_corrupt;
      Alcotest.test_case "trailing bytes rejected" `Quick
        test_trailing_bytes_rejected;
      Alcotest.test_case "newline in simple rejected" `Quick
        test_newline_in_simple_rejected;
      Alcotest.test_case "response nesting bounded" `Quick
        test_nested_response_depth_bounded;
    ] )
