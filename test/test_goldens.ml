(* Byte-identical-schedule proof: each scenario in
   [Golden_scenarios.all] is regenerated and compared, byte for byte,
   against the committed golden file.  The goldens were captured
   before the hot-path optimisation pack (flat read-sets, hashed
   write-sets, descriptor reuse), so a pass proves the optimisations
   left every charge sequence — and hence every schedule, telemetry
   timestamp and E2–E4 figure number — untouched.

   Regenerate deliberately with
     dune exec test/gen_goldens.exe -- test/goldens *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_golden name gen () =
  let path = Filename.concat "goldens" name in
  if not (Sys.file_exists path) then
    Alcotest.fail
      (Printf.sprintf
         "missing golden %s - regenerate with: dune exec test/gen_goldens.exe"
         path);
  let expected = read_file path in
  let actual = gen () in
  if String.equal expected actual then ()
  else begin
    (* Pinpoint the first divergence: full traces are megabytes, a
       character offset makes the report actionable. *)
    let n = min (String.length expected) (String.length actual) in
    let i = ref 0 in
    while !i < n && expected.[!i] = actual.[!i] do
      incr i
    done;
    let context s =
      let from = max 0 (!i - 60) in
      String.sub s from (min 120 (String.length s - from))
    in
    Alcotest.fail
      (Printf.sprintf
         "golden %s diverges at byte %d (expected %d bytes, got %d)\n\
          expected ...%s...\n\
          actual   ...%s..."
         name !i
         (String.length expected)
         (String.length actual) (context expected) (context actual))
  end

let suite =
  ( "goldens",
    List.map
      (fun (name, gen) ->
        Alcotest.test_case name `Quick (check_golden name gen))
      Golden_scenarios.all
    @ [
        (* Constructing with an explicit [~algo:`Tl2] must reproduce
           the default golden byte for byte: the algorithm-polymorphism
           refactor is a zero-cost change for existing TL2 users. *)
        Alcotest.test_case "trace_seed5.json (explicit ~algo:`Tl2)" `Quick
          (check_golden "trace_seed5.json"
             (Golden_scenarios.trace_json ~algo:`Tl2 ~seed:5));
      ] )
