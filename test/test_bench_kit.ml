(* Tests for the benchmark kit: workload ratios and determinism, the
   virtual-time harness (normalisation, parallelism cap, reproducible
   results), and the figure assembly. *)

module W = Polytm_bench_kit.Workload
module H = Polytm_bench_kit.Harness
module F = Polytm_bench_kit.Figures

let test_workload_ratios () =
  let spec = W.default_spec in
  let rng = Polytm_util.Rng.create 5 in
  let n = 100_000 in
  let contains = ref 0 and adds = ref 0 and removes = ref 0 and sizes = ref 0 in
  for _ = 1 to n do
    match W.next_op spec rng with
    | W.Contains _ -> incr contains
    | W.Add _ -> incr adds
    | W.Remove _ -> incr removes
    | W.Size -> incr sizes
  done;
  let near label expected x =
    let p = 100. *. float_of_int x /. float_of_int n in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.1f%% within 1%% of %d%%" label p expected)
      true
      (Float.abs (p -. float_of_int expected) < 1.)
  in
  near "contains" 80 !contains;
  near "updates" 10 (!adds + !removes);
  near "size" 10 !sizes;
  (* Adds and removes split evenly (within 20% of each other). *)
  Alcotest.(check bool) "adds ~ removes" true
    (abs (!adds - !removes) < (!adds + !removes) / 5)

let test_workload_key_range () =
  let spec = W.spec_of_size 128 in
  Alcotest.(check int) "range doubles size" 256 spec.W.key_range;
  let rng = Polytm_util.Rng.create 9 in
  for _ = 1 to 10_000 do
    match W.next_op spec rng with
    | W.Contains k | W.Add k | W.Remove k ->
        Alcotest.(check bool) "key in range" true (k >= 0 && k < 256)
    | W.Size -> ()
  done

let test_workload_deterministic () =
  let ops seed =
    let rng = Polytm_util.Rng.create seed in
    List.init 50 (fun _ -> W.next_op W.default_spec rng)
  in
  Alcotest.(check bool) "same seed, same ops" true (ops 3 = ops 3);
  Alcotest.(check bool) "different seeds differ" true (ops 3 <> ops 4)

let test_prefill () =
  let spec = W.spec_of_size 16 in
  let keys = W.prefill_keys spec in
  Alcotest.(check int) "count" 16 (List.length keys);
  Alcotest.(check bool) "all even, in range" true
    (List.for_all (fun k -> k mod 2 = 0 && k < spec.W.key_range) keys)

let run_seq ~threads ~cores =
  H.run ~cores ~make:F.seq_system.F.make ~spec:(W.spec_of_size 64)
    ~threads ~duration:20_000 ~seed:3 ()

let test_harness_reproducible () =
  let a = run_seq ~threads:1 ~cores:16 and b = run_seq ~threads:1 ~cores:16 in
  Alcotest.(check int) "same completed" a.H.completed b.H.completed;
  Alcotest.(check int) "same steps" a.H.steps b.H.steps;
  Alcotest.(check (float 1e-9)) "same throughput" a.H.throughput b.H.throughput

let test_harness_counts_work () =
  let r = run_seq ~threads:1 ~cores:16 in
  Alcotest.(check bool) "completed some ops" true (r.H.completed > 50);
  Alcotest.(check bool) "charged steps" true (r.H.steps > r.H.completed);
  Alcotest.(check int) "no failures on seq" 0 r.H.failed

let test_parallelism_cap () =
  (* Below the core count throughput is completed/duration; beyond it
     the Brent bound divides by threads/cores. *)
  let free = run_seq ~threads:4 ~cores:16 in
  Alcotest.(check (float 1e-6)) "uncapped below P"
    (1000.0 *. float_of_int free.H.completed /. 20_000.)
    free.H.throughput;
  let capped = run_seq ~threads:32 ~cores:16 in
  Alcotest.(check (float 1e-6)) "capped by work/P"
    (1000.0 *. float_of_int capped.H.completed /. (20_000. *. 2.))
    capped.H.throughput

let test_stm_system_reports_stats () =
  let r =
    H.run ~make:F.classic_system.F.make ~spec:(W.spec_of_size 64) ~threads:2
      ~duration:20_000 ~seed:5 ()
  in
  match r.H.telemetry with
  | None -> Alcotest.fail "telemetry snapshot attached"
  | Some snap ->
      let t = snap.Polytm_telemetry.Agg.total in
      Alcotest.(check bool) "committed transactions counted" true
        (t.Polytm_telemetry.Agg.commits > 0);
      (* The harness workload exercises the four labelled set
         operations; every site the aggregation saw must be one of
         them (prefill runs before the sink observes adds too). *)
      List.iter
        (fun s ->
          Alcotest.(check bool)
            ("known site: " ^ s.Polytm_telemetry.Agg.site)
            true
            (List.mem s.Polytm_telemetry.Agg.site
               [ "add"; "remove"; "contains"; "size" ]))
        snap.Polytm_telemetry.Agg.sites

let test_figures_structure () =
  let p =
    {
      F.default_params with
      F.spec = W.spec_of_size 64;
      duration = 15_000;
      threads_list = [ 1; 4 ];
    }
  in
  let m = F.run_all p in
  let f5 = F.fig5_of m and f7 = F.fig7_of m and f9 = F.fig9_of m in
  Alcotest.(check int) "fig5 has 2 series" 2 (List.length f5.F.series);
  Alcotest.(check int) "fig7 has 3 series" 3 (List.length f7.F.series);
  Alcotest.(check int) "fig9 has 3 series" 3 (List.length f9.F.series);
  List.iter
    (fun s ->
      Alcotest.(check (list int)) "points at requested threads" [ 1; 4 ]
        (List.map (fun pt -> pt.F.threads) s.F.points))
    (f5.F.series @ f9.F.series);
  Alcotest.(check int) "five claims" 5 (List.length (F.claims m));
  Alcotest.(check bool) "baseline positive" true (m.F.baseline > 0.)

let test_relaxed_semantics_win_under_contention () =
  (* The library's raison d'être, as a regression test: at 32 threads
     the mixed profile must beat classic TL2 by a clear margin. *)
  let p =
    {
      F.default_params with
      F.spec = W.spec_of_size 256;
      duration = 60_000;
      threads_list = [ 32 ];
    }
  in
  let baseline = F.sequential_baseline p in
  let speedup sys =
    match (F.run_series p ~baseline sys).F.points with
    | [ pt ] -> pt.F.speedup
    | _ -> Alcotest.fail "expected one point"
  in
  let classic = speedup F.classic_system in
  let mixed = speedup F.mixed_system in
  Alcotest.(check bool)
    (Printf.sprintf "mixed (%.2f) > 1.5 x classic (%.2f)" mixed classic)
    true
    (mixed > 1.5 *. classic)

module Bank = Polytm_bench_kit.Bank

let test_bank_correct_and_snapshot_wins () =
  let config =
    { Bank.default_config with Bank.accounts = 16; threads = 8;
      duration = 40_000; }
  in
  match Bank.compare_semantics ~config () with
  | [ classic; snapshot ] ->
      Alcotest.(check int) "classic balances all correct" 0
        classic.Bank.bad_balances;
      Alcotest.(check int) "snapshot balances all correct" 0
        snapshot.Bank.bad_balances;
      Alcotest.(check bool) "snapshot served stale reads" true
        (snapshot.Bank.stale_reads > 0);
      Alcotest.(check bool)
        (Printf.sprintf "snapshot throughput (%.1f) >= classic (%.1f)"
           snapshot.Bank.throughput classic.Bank.throughput)
        true
        (snapshot.Bank.throughput >= classic.Bank.throughput)
  | _ -> Alcotest.fail "expected two results"

let suite =
  ( "bench-kit",
    [
      Alcotest.test_case "workload ratios" `Quick test_workload_ratios;
      Alcotest.test_case "workload key range" `Quick test_workload_key_range;
      Alcotest.test_case "workload deterministic" `Quick
        test_workload_deterministic;
      Alcotest.test_case "prefill" `Quick test_prefill;
      Alcotest.test_case "harness reproducible" `Quick test_harness_reproducible;
      Alcotest.test_case "harness counts work" `Quick test_harness_counts_work;
      Alcotest.test_case "parallelism cap" `Quick test_parallelism_cap;
      Alcotest.test_case "stm stats attached" `Quick test_stm_system_reports_stats;
      Alcotest.test_case "figures structure" `Quick test_figures_structure;
      Alcotest.test_case "relaxed semantics win" `Quick
        test_relaxed_semantics_win_under_contention;
      Alcotest.test_case "bank benchmark" `Quick
        test_bank_correct_and_snapshot_wins;
    ] )
