(* Writes the golden files for the [goldens] regression suite.

     dune exec test/gen_goldens.exe -- test/goldens

   Regeneration is a deliberate act: the goldens pin the simulator's
   charge sequences (see golden_scenarios.ml), so a diff here means
   observable behaviour changed and EXPERIMENTS.md needs revisiting. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/goldens" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.iter
    (fun (name, gen) ->
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc (gen ());
      close_out oc;
      Printf.printf "wrote %s\n%!" path)
    Golden_scenarios.all
