(* Tests for the sharded store (DESIGN.md §S20): the shard router,
   sharded structures, and the cross-instance commit protocols.

   - Differential battery: any op sequence leaves a 1-shard and a
     16-shard store with identical committed contents and identical
     per-op answers (qcheck, against a Stdlib model as the third
     opinion).
   - Bank invariant: concurrent cross-shard MULTI transfers conserve
     the total balance, and every concurrent snapshot aggregate sees a
     conserved total (domains runtime — real parallelism).
   - Explore model check of the 2PC window: no schedule lets a
     snapshot reader observe one member's writes without the others';
     the [unsafe_no_stabilize] variant deliberately reintroduces the
     torn read and the explorer must find it. *)

module Sim = Polytm_runtime.Sim
module Explore = Polytm_runtime.Explore
module Sem = Polytm.Semantics

(* ---- differential: 1 shard vs 16 shards (sim runtime) ------------------ *)

module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module Shd = Polytm_structs.Sharded.Make (S)
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type op =
  | Madd of int * int
  | Mremove of int
  | Mfind of int
  | Sadd of int
  | Sremove of int
  | Scontains of int
  | Msize
  | Mlist
  | Ssize

let op_gen =
  QCheck.Gen.(
    let key = int_range 0 200 in
    frequency
      [
        (4, map2 (fun k v -> Madd (k, v)) key (int_range 0 1000));
        (2, map (fun k -> Mremove k) key);
        (2, map (fun k -> Mfind k) key);
        (3, map (fun k -> Sadd k) key);
        (1, map (fun k -> Sremove k) key);
        (1, map (fun k -> Scontains k) key);
        (1, return Msize);
        (1, return Mlist);
        (1, return Ssize);
      ])

let pp_op = function
  | Madd (k, v) -> Printf.sprintf "Madd(%d,%d)" k v
  | Mremove k -> Printf.sprintf "Mremove %d" k
  | Mfind k -> Printf.sprintf "Mfind %d" k
  | Sadd k -> Printf.sprintf "Sadd %d" k
  | Sremove k -> Printf.sprintf "Sremove %d" k
  | Scontains k -> Printf.sprintf "Scontains %d" k
  | Msize -> "Msize"
  | Mlist -> "Mlist"
  | Ssize -> "Ssize"

(* One store = a map and a hash set over a [k]-shard router.  Answers
   are reified so two stores can be compared op by op. *)
let mk_store shards =
  let router = Shd.Router.create ~shards (fun _ -> S.create ()) in
  let m = Shd.Map.create router in
  let s = Shd.Hash_set.create router in
  (m, s)

let apply (m, s) = function
  | Madd (k, v) -> `B (Shd.Map.add m k v)
  | Mremove k -> `B (Shd.Map.remove m k)
  | Mfind k -> `O (Shd.Map.find_opt m k)
  | Sadd k -> `B (Shd.Hash_set.add s k)
  | Sremove k -> `B (Shd.Hash_set.remove s k)
  | Scontains k -> `B (Shd.Hash_set.contains s k)
  | Msize -> `I (Shd.Map.size m)
  | Mlist -> `L (Shd.Map.to_list m)
  | Ssize -> `I (Shd.Hash_set.size s)

let apply_model (m, s) = function
  | Madd (k, v) ->
      let fresh = not (IMap.mem k !m) in
      m := IMap.add k v !m;
      `B fresh
  | Mremove k ->
      let had = IMap.mem k !m in
      m := IMap.remove k !m;
      `B had
  | Mfind k -> `O (IMap.find_opt k !m)
  | Sadd k ->
      let fresh = not (ISet.mem k !s) in
      s := ISet.add k !s;
      `B fresh
  | Sremove k ->
      let had = ISet.mem k !s in
      s := ISet.remove k !s;
      `B had
  | Scontains k -> `B (ISet.mem k !s)
  | Msize -> `I (IMap.cardinal !m)
  | Mlist -> `L (IMap.bindings !m)
  | Ssize -> `I (ISet.cardinal !s)

let differential_property =
  QCheck.Test.make ~count:80
    ~name:"1-shard and 16-shard stores answer and end identically"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 120) op_gen)
       ~print:(fun ops -> String.concat "; " (List.map pp_op ops)))
    (fun ops ->
      let one = mk_store 1 and sixteen = mk_store 16 in
      let model = (ref IMap.empty, ref ISet.empty) in
      List.iter
        (fun op ->
          let a = apply one op and b = apply sixteen op in
          let c = apply_model model op in
          if a <> b then
            QCheck.Test.fail_reportf "1-shard and 16-shard diverge on %s"
              (pp_op op);
          if a <> c then
            QCheck.Test.fail_reportf "sharded store diverges from model on %s"
              (pp_op op))
        ops;
      let m1, s1 = one and m16, s16 = sixteen in
      Shd.Map.to_list m1 = Shd.Map.to_list m16
      && Shd.Hash_set.to_list s1 = Shd.Hash_set.to_list s16
      && Shd.Map.invariants_hold m1
      && Shd.Map.invariants_hold m16)

(* The placement function must be deterministic and total: every key
   owns exactly one shard, and the k-way merged iteration order is the
   global key order. *)
let test_placement_and_order () =
  let router = Shd.Router.create ~shards:7 (fun _ -> S.create ()) in
  let m = Shd.Map.create router in
  let keys = List.init 100 (fun i -> (i * 37) mod 101) in
  List.iter (fun k -> ignore (Shd.Map.add m k (k * 2))) keys;
  let sorted = List.sort_uniq compare keys in
  Alcotest.(check (list (pair int int)))
    "global key order across shards"
    (List.map (fun k -> (k, k * 2)) sorted)
    (Shd.Map.to_list m);
  Alcotest.(check int) "size aggregates all shards" (List.length sorted)
    (Shd.Map.size m);
  List.iter
    (fun k ->
      let i = Shd.Router.index_of_hash router k in
      Alcotest.(check bool) "stable owner" true
        (i = Shd.Router.index_of_hash router k
        && i >= 0
        && i < Shd.Router.count router))
    keys

(* ---- bank invariant under cross-shard MULTI (domains runtime) ---------- *)

module SD = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)
module ShdD = Polytm_structs.Sharded.Make (SD)

let test_bank_conservation () =
  let accounts = 64 and initial = 100 in
  let total = accounts * initial in
  let router = ShdD.Router.create ~shards:16 (fun _ -> SD.create ()) in
  let m = ShdD.Map.create ~size_sem:Sem.Snapshot router in
  for a = 0 to accounts - 1 do
    ignore (ShdD.Map.add m a initial)
  done;
  let transfers = 400 in
  let stop = Atomic.make false in
  (* A transfer between two accounts is one atomic transaction over
     exactly the owner shards of the two keys — the cross-shard 2PC
     when they differ, plain [atomically] when they collide. *)
  let transfer_worker seed () =
    let rng = Random.State.make [| seed |] in
    for _ = 1 to transfers do
      let a = Random.State.int rng accounts in
      let b = (a + 1 + Random.State.int rng (accounts - 1)) mod accounts in
      let amount = 1 + Random.State.int rng 5 in
      let members =
        let oa = ShdD.Map.owner m a and ob = ShdD.Map.owner m b in
        if oa == ob then [ oa ] else [ oa; ob ]
      in
      SD.atomically_multi ~label:"transfer" members (fun () ->
          let av = Option.value ~default:0 (ShdD.Map.find_opt m a) in
          let bv = Option.value ~default:0 (ShdD.Map.find_opt m b) in
          ignore (ShdD.Map.add m a (av - amount));
          ignore (ShdD.Map.add m b (bv + amount)))
    done
  in
  (* The auditor folds the whole store through the consistent bound
     vector; every cut it takes mid-flight must conserve the total. *)
  let auditor () =
    let audits = ref 0 in
    while not (Atomic.get stop) do
      let sum = ShdD.Map.fold m (fun acc _ v -> acc + v) 0 in
      incr audits;
      if sum <> total then
        Alcotest.failf "audit %d saw a torn total: %d (want %d)" !audits sum
          total
    done;
    !audits
  in
  let aud = Domain.spawn auditor in
  let workers = List.init 2 (fun i -> Domain.spawn (transfer_worker (i + 1))) in
  List.iter Domain.join workers;
  Atomic.set stop true;
  let audits = Domain.join aud in
  Alcotest.(check bool) "auditor ran" true (audits > 0);
  Alcotest.(check int) "final total conserved" total
    (ShdD.Map.fold m (fun acc _ v -> acc + v) 0);
  Alcotest.(check bool) "tree invariants hold on every shard" true
    (ShdD.Map.invariants_hold m)

(* ---- Explore: the 2PC window cannot be read torn (sim runtime) --------- *)

(* A writer commits [a := 1] on shard 0 and [b := 1] on shard 1 as one
   cross-instance transaction; a reader takes a cross-instance
   snapshot of both.  Atomicity of the 2PC means the reader sees
   either neither write or both — under EVERY schedule. *)
let torn_read_program ~stabilize () =
  let s0 = S.create () and s1 = S.create () in
  let stms = [ s0; s1 ] in
  let a = S.tvar s0 0 and b = S.tvar s1 0 in
  let writer () =
    S.atomically_multi ~label:"span-write" stms (fun () ->
        S.atomically s0 (fun tx -> S.write tx a 1);
        S.atomically s1 (fun tx -> S.write tx b 1))
  in
  let reader () =
    let av, bv =
      S.snapshot_multi ~label:"span-read"
        ~unsafe_no_stabilize:(not stabilize) stms (fun () ->
          ( S.atomically s0 (fun tx -> S.read tx a),
            S.atomically s1 (fun tx -> S.read tx b) ))
    in
    assert (av = bv)
  in
  let t1 = Sim.spawn writer and t2 = Sim.spawn reader in
  Sim.join t1;
  Sim.join t2;
  assert (S.atomically s0 (fun tx -> S.read tx a) = 1);
  assert (S.atomically s1 (fun tx -> S.read tx b) = 1)

let explore_2pc ~stabilize =
  Explore.check ~max_executions:20_000 ~max_depth:60 ~step_limit:2_000
    ~max_preemptions:2
    (torn_read_program ~stabilize)

let test_2pc_no_torn_read () =
  let outcome = explore_2pc ~stabilize:true in
  Alcotest.(check bool)
    (Printf.sprintf "explored many schedules (%d)" outcome.Explore.executions)
    true
    (outcome.Explore.executions > 50)

let test_2pc_broken_ordering_caught () =
  (* Skipping the bound vector's re-check pass reintroduces the torn
     read; the explorer must find a schedule that observes it.  This
     is the self-test that the model check has teeth. *)
  let found =
    try
      ignore (explore_2pc ~stabilize:false);
      false
    with Explore.Violation _ -> true
  in
  Alcotest.(check bool) "explorer catches the torn cross-shard read" true
    found

(* ---- flattening: sharded point ops inside a spanning transaction ------- *)

let test_point_ops_flatten_into_spanning_tx () =
  let router = Shd.Router.create ~shards:4 (fun _ -> S.create ()) in
  let m = Shd.Map.create router in
  (* A spanning transaction mixing point ops on several shards commits
     all of them atomically; an abort discards all of them. *)
  let wrote =
    Shd.Router.atomically_all ~label:"batch" router (fun () ->
        List.for_all (fun k -> Shd.Map.add m k (k * 10)) [ 0; 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check bool) "all point ops committed" true wrote;
  Alcotest.(check int) "visible after commit" 6 (Shd.Map.size m);
  (match
     Shd.Router.atomically_all ~label:"doomed" router (fun () ->
         ignore (Shd.Map.add m 99 990);
         raise Exit)
   with
  | () -> Alcotest.fail "doomed batch should have raised"
  | exception Exit -> ());
  Alcotest.(check (option int)) "aborted batch discarded everywhere" None
    (Shd.Map.find_opt m 99)

let suite =
  ( "sharded",
    [
      Test_seed.to_alcotest differential_property;
      Alcotest.test_case "placement and merged iteration order" `Quick
        test_placement_and_order;
      Alcotest.test_case "bank total conserved across cross-shard MULTI"
        `Quick test_bank_conservation;
      Alcotest.test_case "2PC window: no torn read under any schedule" `Quick
        test_2pc_no_torn_read;
      Alcotest.test_case "2PC window: broken ordering is caught" `Quick
        test_2pc_broken_ordering_caught;
      Alcotest.test_case "point ops flatten into a spanning tx" `Quick
        test_point_ops_flatten_into_spanning_tx;
    ] )
