(* Structure-level linearizability checker: unit histories (including
   the classic overlapping-dequeue example), WGL vs brute-force
   cross-validation on random small histories, and a replayable
   regression corpus in lin_corpus/. *)

module Lin = Polytm_history.Linearizability

let ev thread inv ret op result = { Lin.thread; op; result; inv; ret }

let add k = Lin.Add k

let remove k = Lin.Remove k

let contains k = Lin.Contains k

let tt = Lin.Bool true

let ff = Lin.Bool false

let check = Alcotest.(check bool)

(* ---- unit histories: sets ---------------------------------------------- *)

let test_sequential_set () =
  let h =
    [
      ev 1 0 1 (add 5) tt;
      ev 1 2 3 (contains 5) tt;
      ev 1 4 5 (remove 5) tt;
      ev 1 6 7 (contains 5) ff;
    ]
  in
  check "well-formed" true (Lin.well_formed h);
  check "sequential set accepted" true (Lin.accepts (Lin.set_spec ()) h);
  check "check_set agrees" true (Lin.check_set h = Lin.Linearizable)

let test_overlapping_updates () =
  (* All three ops overlap; only the order add < contains < remove
     explains the results. *)
  let h =
    [
      ev 1 0 5 (add 7) tt;
      ev 2 1 6 (contains 7) tt;
      ev 3 2 7 (remove 7) tt;
      ev 1 8 9 (contains 7) ff;
    ]
  in
  check "overlap resolved" true (Lin.check_set h = Lin.Linearizable)

let test_duplicate_add_rejected () =
  (* Non-overlapping double add(5) -> true with no remove between:
     per-key violation, regardless of the unrelated key-8 event. *)
  let h =
    [
      ev 1 0 1 (add 5) tt;
      ev 2 2 3 (add 5) tt;
      ev 3 0 3 (contains 8) ff;
    ]
  in
  match Lin.check_set h with
  | Lin.Linearizable -> Alcotest.fail "duplicate add accepted"
  | Lin.Violation v ->
      check "culprit is per-key (no single op)" true (v.culprit = None);
      check "witness shrunk to the offending key" true
        (List.for_all
           (fun e ->
             match e.Lin.op with
             | Lin.Add 5 | Lin.Remove 5 | Lin.Contains 5 -> true
             | _ -> false)
           v.witness_events);
      check "witness is minimal (contains dropped)" true
        (List.length v.witness_events <= 2)

let test_stale_snapshot_size_accepted () =
  (* size() -> 3 is stale by response time (two adds landed inside its
     interval) but exact at invocation time: a snapshot size. *)
  let h =
    [
      ev 1 0 5 Lin.Size (Lin.Int 3);
      ev 2 0 1 (add 10) tt;
      ev 3 2 3 (add 11) tt;
    ]
  in
  check "stale snapshot accepted" true
    (Lin.check_set ~init:[ 0; 1; 2 ] h = Lin.Linearizable)

let test_traversal_double_count_rejected () =
  (* Key 0 migrates one-way to key 10 during the traversal; counting
     both positions yields 4, a cardinality no instant ever had. *)
  let size_ev = ev 1 0 4 Lin.Size (Lin.Int 4) in
  let h =
    [ size_ev; ev 2 0 1 (remove 0) tt; ev 2 2 3 (add 10) tt ]
  in
  (match Lin.check_set ~init:[ 0; 1; 2 ] h with
  | Lin.Linearizable -> Alcotest.fail "double-counted size accepted"
  | Lin.Violation v ->
      check "culprit is the size op" true (v.culprit = Some size_ev);
      check "witness shows the racing migration" true
        (List.length v.witness_events = 3));
  let lo, hi = Lin.size_bounds ~init:[ 0; 1; 2 ] h size_ev in
  check "lower bound" true (lo <= 3);
  check "upper bound excludes 4" true (hi = 3)

(* ---- unit histories: queues and stacks --------------------------------- *)

let enq v = Lin.Enqueue v

let deq = Lin.Dequeue

let enqd = Lin.Enqueued

let deqd v = Lin.Dequeued v

let test_overlapping_dequeues_ok () =
  (* The classic Herlihy–Wing shape: the two dequeues overlap, so
     either may linearize first; returning them "crossed" is fine. *)
  let h =
    [
      ev 1 0 1 (enq 1) enqd;
      ev 2 2 3 (enq 2) enqd;
      ev 1 4 7 deq (deqd (Some 2));
      ev 2 5 6 deq (deqd (Some 1));
    ]
  in
  check "overlapping dequeues may cross" true (Lin.accepts Lin.queue_spec h)

let test_sequential_dequeues_fifo_violation () =
  (* Same results, but the dequeues are now sequential: deq -> 2 then
     deq -> 1 contradicts FIFO for enqueue order 1, 2. *)
  let h =
    [
      ev 1 0 1 (enq 1) enqd;
      ev 1 2 3 (enq 2) enqd;
      ev 2 4 5 deq (deqd (Some 2));
      ev 2 6 7 deq (deqd (Some 1));
    ]
  in
  check "sequential crossed dequeues rejected" false
    (Lin.accepts Lin.queue_spec h);
  check "brute force agrees" false
    (Lin.accepts_brute_force Lin.queue_spec h)

let test_empty_dequeue () =
  let h =
    [
      ev 1 0 3 deq (deqd None);
      ev 2 1 2 (enq 9) enqd;
      ev 1 4 5 deq (deqd (Some 9));
    ]
  in
  check "empty dequeue linearizes before the enqueue" true
    (Lin.accepts Lin.queue_spec h)

let test_stack_order () =
  let push v = Lin.Push v and pushed = Lin.Pushed in
  let pop v = Lin.Popped v in
  let good =
    [
      ev 1 0 1 (push 1) pushed;
      ev 1 2 3 (push 2) pushed;
      ev 2 4 5 Lin.Pop (pop (Some 2));
      ev 2 6 7 Lin.Pop (pop (Some 1));
    ]
  in
  check "LIFO accepted" true (Lin.accepts Lin.stack_spec good);
  let bad =
    [
      ev 1 0 1 (push 1) pushed;
      ev 1 2 3 (push 2) pushed;
      ev 2 4 5 Lin.Pop (pop (Some 1));
      ev 2 6 7 Lin.Pop (pop (Some 2));
    ]
  in
  check "FIFO-order pops rejected" false (Lin.accepts Lin.stack_spec bad)

let test_well_formedness () =
  check "inverted interval rejected" false
    (Lin.well_formed [ ev 1 5 2 (add 1) tt ]);
  check "same-thread overlap rejected" false
    (Lin.well_formed [ ev 1 0 4 (add 1) tt; ev 1 2 6 (add 2) tt ]);
  check "cross-thread overlap fine" true
    (Lin.well_formed [ ev 1 0 4 (add 1) tt; ev 2 2 6 (add 2) tt ])

(* ---- WGL vs brute force on random small histories ----------------------- *)

(* Well-formed histories by construction: each op picks a thread; each
   thread's cursor advances past its previous response, with small
   jittered intervals so threads overlap freely. *)
let intervals_gen nops =
  QCheck.Gen.(
    let* jitters = list_repeat nops (pair (0 -- 2) (0 -- 3)) in
    let* threads = list_repeat nops (0 -- 2) in
    let cursor = Array.make 3 0 in
    return
      (List.map2
         (fun t (j, len) ->
           let inv = cursor.(t) + j in
           let ret = inv + len in
           cursor.(t) <- ret + 1;
           (t, inv, ret))
         threads jitters))

let membership_history_gen =
  QCheck.Gen.(
    let* nops = 1 -- 6 in
    let* shape = intervals_gen nops in
    let* ops =
      list_repeat nops
        (pair (oneofl [ add 0; remove 0; contains 0 ]) bool)
    in
    return
      (List.map2 (fun (t, inv, ret) (op, r) -> ev t inv ret op (Lin.Bool r))
         shape ops))

let print_set_history h =
  Format.asprintf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf e -> Lin.pp_set_event ppf e))
    h

let prop_wgl_equals_brute_membership =
  QCheck.Test.make ~name:"linearizability: WGL = brute force (membership)"
    ~count:1000
    (QCheck.make ~print:print_set_history membership_history_gen)
    (fun h ->
      Lin.accepts (Lin.per_key_spec ()) h
      = Lin.accepts_brute_force (Lin.per_key_spec ()) h)

let queue_history_gen =
  QCheck.Gen.(
    let* nops = 1 -- 5 in
    let* shape = intervals_gen nops in
    let* ops =
      list_repeat nops
        (oneof
           [
             (let* v = 1 -- 3 in
              return (enq v, enqd));
             (let* r = oneofl [ None; Some 1; Some 2; Some 3 ] in
              return (deq, deqd r));
           ])
    in
    return
      (List.map2 (fun (t, inv, ret) (op, r) -> ev t inv ret op r) shape ops))

let print_queue_history h =
  Format.asprintf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf e -> Lin.pp_queue_event ppf e))
    h

let prop_wgl_equals_brute_queue =
  QCheck.Test.make ~name:"linearizability: WGL = brute force (queue)"
    ~count:500
    (QCheck.make ~print:print_queue_history queue_history_gen)
    (fun h ->
      Lin.accepts Lin.queue_spec h = Lin.accepts_brute_force Lin.queue_spec h)

(* check_set is sound: it never rejects a history the whole-set spec
   (size linearized strictly) accepts — its size rule only ever
   admits MORE (snapshot sizes). *)
let set_history_gen =
  QCheck.Gen.(
    let* nops = 1 -- 5 in
    let* shape = intervals_gen nops in
    let* ops =
      list_repeat nops
        (oneof
           [
             (let* k = 0 -- 1 in
              let* op = oneofl [ add k; remove k; contains k ] in
              let* r = bool in
              return (op, Lin.Bool r));
             (let* n = 0 -- 2 in
              return (Lin.Size, Lin.Int n));
           ])
    in
    return
      (List.map2 (fun (t, inv, ret) (op, r) -> ev t inv ret op r) shape ops))

let prop_check_set_sound =
  QCheck.Test.make ~name:"check_set accepts every strictly-linearizable history"
    ~count:500
    (QCheck.make ~print:print_set_history set_history_gen)
    (fun h ->
      QCheck.assume (Lin.accepts (Lin.set_spec ()) h);
      Lin.check_set h = Lin.Linearizable)

(* ---- regression corpus -------------------------------------------------- *)

(* Format: '#' comments; 'expect linearizable|violation';
   'init k1 k2 ...'; then one event per line:
   thread inv ret op [key] result. *)
let parse_corpus path =
  let ic = open_in path in
  let expect = ref None and init = ref [] and events = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" || line.[0] = '#' then ()
       else
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [ "expect"; "linearizable" ] -> expect := Some true
         | [ "expect"; "violation" ] -> expect := Some false
         | "init" :: ks -> init := List.map int_of_string ks
         | t :: inv :: ret :: rest ->
             let thread =
               int_of_string (String.sub t 1 (String.length t - 1))
             in
             let inv = int_of_string inv and ret = int_of_string ret in
             let op, result =
               match rest with
               | [ "add"; k; r ] -> (add (int_of_string k), Lin.Bool (bool_of_string r))
               | [ "remove"; k; r ] ->
                   (remove (int_of_string k), Lin.Bool (bool_of_string r))
               | [ "contains"; k; r ] ->
                   (contains (int_of_string k), Lin.Bool (bool_of_string r))
               | [ "size"; n ] -> (Lin.Size, Lin.Int (int_of_string n))
               | _ -> failwith (path ^ ": bad op line: " ^ line)
             in
             events := ev thread inv ret op result :: !events
         | _ -> failwith (path ^ ": bad line: " ^ line)
     done
   with End_of_file -> close_in ic);
  match !expect with
  | None -> failwith (path ^ ": missing 'expect' directive")
  | Some e -> (e, !init, List.rev !events)

let corpus_dir = "lin_corpus"

let test_corpus () =
  let files =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".hist")
    |> List.sort compare
  in
  check "corpus present" true (files <> []);
  List.iter
    (fun f ->
      let expect, init, events = parse_corpus (Filename.concat corpus_dir f) in
      let got = Lin.check_set ~init events = Lin.Linearizable in
      Alcotest.(check bool) (f ^ " verdict") expect got)
    files

let suite =
  ( "linearizability",
    [
      Alcotest.test_case "sequential set" `Quick test_sequential_set;
      Alcotest.test_case "overlapping updates" `Quick test_overlapping_updates;
      Alcotest.test_case "duplicate add rejected" `Quick
        test_duplicate_add_rejected;
      Alcotest.test_case "stale snapshot size accepted" `Quick
        test_stale_snapshot_size_accepted;
      Alcotest.test_case "traversal double count rejected" `Quick
        test_traversal_double_count_rejected;
      Alcotest.test_case "overlapping dequeues may cross" `Quick
        test_overlapping_dequeues_ok;
      Alcotest.test_case "sequential crossed dequeues rejected" `Quick
        test_sequential_dequeues_fifo_violation;
      Alcotest.test_case "empty dequeue" `Quick test_empty_dequeue;
      Alcotest.test_case "stack order" `Quick test_stack_order;
      Alcotest.test_case "well-formedness" `Quick test_well_formedness;
      Test_seed.to_alcotest prop_wgl_equals_brute_membership;
      Test_seed.to_alcotest prop_wgl_equals_brute_queue;
      Test_seed.to_alcotest prop_check_set_sound;
      Alcotest.test_case "regression corpus" `Quick test_corpus;
    ] )
