(* Section 3.1's expressiveness claim, executed.

   The paper defines atomicity(π, π') — two accesses appear to occur at
   one common indivisible point — and notes it is NOT transitive: the
   hand-over-hand program

     P = lock(x) r(x) lock(y) r(y) unlock(x) lock(z) r(z) unlock(y) unlock(z)

   guarantees atomicity(r(x),r(y)) and atomicity(r(y),r(z)) but NOT
   atomicity(r(x),r(z)), while Pt = transaction{r(x) r(y) r(z)}
   necessarily guarantees all three — the transitive closure cannot be
   avoided with a classic transaction.

   Each pair is probed with a dedicated writer that updates exactly
   that pair under its two locks (so the pair is equal at every lock
   quiescent point):

   - the (x,y) writer and the (y,z) writer can never tear P's reads —
     P overlaps lock ownership across each adjacent pair;
   - the (x,z) writer tears P in some schedule: it slips into the
     window where the reader holds only lock(y) — found by schedule sampling;
   - no writer tears Pt. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module Explore = Polytm_runtime.Explore
module Lock = Polytm_runtime.Spinlock.Make (Polytm_runtime.Sim_runtime)
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)

type cells = {
  vars : int R.atomic array;  (** x, y, z *)
  locks : Lock.t array;
}

let make_cells () =
  { vars = Array.init 3 (fun _ -> R.atomic 0); locks = Array.init 3 (fun _ -> Lock.create ()) }

(* The paper's program P: returns the three observed values. *)
let run_p c =
  Lock.lock c.locks.(0);
  let vx = R.get c.vars.(0) in
  Lock.lock c.locks.(1);
  let vy = R.get c.vars.(1) in
  Lock.unlock c.locks.(0);
  Lock.lock c.locks.(2);
  let vz = R.get c.vars.(2) in
  Lock.unlock c.locks.(1);
  Lock.unlock c.locks.(2);
  (vx, vy, vz)

(* Writer updating the pair (i, j), i < j, under both locks (global
   lock order, like GFS's depth ordering). *)
let run_pair_writer c i j =
  Lock.lock c.locks.(i);
  Lock.lock c.locks.(j);
  R.set c.vars.(i) 1;
  R.set c.vars.(j) 1;
  Lock.unlock c.locks.(i);
  Lock.unlock c.locks.(j)

let explore_pair (i, j) check =
  let program () =
    let c = make_cells () in
    let observed = ref (0, 0, 0) in
    let reader = Sim.spawn (fun () -> observed := run_p c) in
    let writer = Sim.spawn (fun () -> run_pair_writer c i j) in
    Sim.join reader;
    Sim.join writer;
    check !observed
  in
  Explore.check ~max_executions:100_000 ~max_depth:60 ~step_limit:2_000
    program

let test_p_xy_pair_atomic () =
  let outcome = explore_pair (0, 1) (fun (vx, vy, _) -> assert (vx = vy)) in
  Alcotest.(check bool) "every schedule keeps (x,y) consistent" true
    (outcome.Explore.executions > 10)

let test_p_yz_pair_atomic () =
  let outcome = explore_pair (1, 2) (fun (_, vy, vz) -> assert (vy = vz)) in
  Alcotest.(check bool) "every schedule keeps (y,z) consistent" true
    (outcome.Explore.executions > 10)

let random_pair_runs (i, j) seeds =
  (* The schedule space with spinning is too large for bounded DFS;
     seeded random schedules sample it instead. *)
  List.map
    (fun seed ->
      let c = make_cells () in
      let observed = ref (0, 0, 0) in
      let (), _ =
        Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
            let reader = Sim.spawn (fun () -> observed := run_p c) in
            let writer = Sim.spawn (fun () -> run_pair_writer c i j) in
            Sim.join reader;
            Sim.join writer)
      in
      !observed)
    (List.init seeds (fun k -> k + 1))

let test_p_xz_pair_tearable () =
  let torn =
    List.exists (fun (vx, _, vz) -> vx <> vz) (random_pair_runs (0, 2) 300)
  in
  Alcotest.(check bool) "some schedule tears (x,z)" true torn;
  (* And the same sampling never tears the adjacent pairs. *)
  Alcotest.(check bool) "(x,y) never torn in the same sample" true
    (List.for_all (fun (vx, vy, _) -> vx = vy) (random_pair_runs (0, 1) 300));
  Alcotest.(check bool) "(y,z) never torn in the same sample" true
    (List.for_all (fun (_, vy, vz) -> vy = vz) (random_pair_runs (1, 2) 300))

let test_transaction_forces_transitive_closure ~algo () =
  (* Pt with the same (x,z) pair-writer as a classic transaction:
     every schedule keeps even the outer pair consistent — under both
     the TL2 and the NORec backend. *)
  let program () =
    let stm = S.create ~cm:Polytm.Contention.Suicide ~algo () in
    let vars = Array.init 3 (fun _ -> S.tvar stm 0) in
    let observed = ref (0, 0, 0) in
    let reader =
      Sim.spawn (fun () ->
          observed :=
            S.atomically stm (fun tx ->
                (S.read tx vars.(0), S.read tx vars.(1), S.read tx vars.(2))))
    in
    let writer =
      Sim.spawn (fun () ->
          S.atomically stm (fun tx ->
              S.write tx vars.(0) 1;
              S.write tx vars.(2) 1))
    in
    Sim.join reader;
    Sim.join writer;
    let vx, _, vz = !observed in
    assert (vx = vz)
  in
  let outcome =
    Explore.check ~max_executions:100_000 ~max_depth:60 ~step_limit:2_000
      program
  in
  Alcotest.(check bool) "no schedule tears Pt" true
    (outcome.Explore.executions > 10)

let test_snapshot_also_transitive ~algo () =
  (* The snapshot semantics provides the same closure without ever
     aborting the writers.  The zero-abort claim holds for both
     backends: TL2 snapshot reads wait out in-flight lock owners,
     NORec snapshot reads take fully-written-back versions directly —
     neither ever invalidates a writer. *)
  for seed = 1 to 20 do
    let stm = S.create ~algo () in
    let vars = Array.init 3 (fun _ -> S.tvar stm 0) in
    let torn = ref false in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let reader =
            Sim.spawn (fun () ->
                let vx, vz =
                  S.atomically ~sem:Polytm.Semantics.Snapshot stm (fun tx ->
                      (S.read tx vars.(0), S.read tx vars.(2)))
                in
                if vx <> vz then torn := true)
          in
          let writer =
            Sim.spawn (fun () ->
                for v = 1 to 2 do
                  S.atomically stm (fun tx ->
                      S.write tx vars.(0) v;
                      S.write tx vars.(2) v)
                done)
          in
          Sim.join reader;
          Sim.join writer)
    in
    Alcotest.(check bool) (Printf.sprintf "seed %d consistent" seed) false !torn;
    Alcotest.(check int) "writers never aborted" 0
      ((S.stats stm).S.read_invalid + (S.stats stm).S.lock_busy)
  done

let suite =
  ( "expressiveness",
    [
      Alcotest.test_case "P: (x,y) atomic" `Quick test_p_xy_pair_atomic;
      Alcotest.test_case "P: (y,z) atomic" `Quick test_p_yz_pair_atomic;
      Alcotest.test_case "P: (x,z) tears" `Quick test_p_xz_pair_tearable;
      Alcotest.test_case "Pt: transitive closure forced (tl2)" `Quick
        (test_transaction_forces_transitive_closure ~algo:`Tl2);
      Alcotest.test_case "Pt: transitive closure forced (norec)" `Quick
        (test_transaction_forces_transitive_closure ~algo:`Norec);
      Alcotest.test_case "snapshot: closure without aborts (tl2)" `Quick
        (test_snapshot_also_transitive ~algo:`Tl2);
      Alcotest.test_case "snapshot: closure without aborts (norec)" `Quick
        (test_snapshot_also_transitive ~algo:`Norec);
    ] )
