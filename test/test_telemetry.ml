(* Tests for the telemetry subsystem: the abort-cause taxonomy is
   total and distinct, seeded simulator runs yield byte-identical
   traces, the exporters match golden output, installing no sink
   leaves the STM's behaviour untouched, and the backends (recorder,
   ring, fan-out) honour their contracts. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module AM = Polytm_structs.Adapters.Make (Polytm_runtime.Sim_runtime)
module T = Polytm_telemetry

(* A small contended list-set workload under the seeded random
   scheduler; every telemetry-relevant path fires (commits, lock-busy
   and elastic-cut aborts, retries). *)
let run_workload ?sink ~seed () =
  let stm = AM.S.create () in
  AM.S.set_sink stm sink;
  let set = AM.List_set.create ~parse_sem:Polytm.Semantics.Elastic stm in
  let (), info =
    Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
        R.parallel
          (List.init 4 (fun t () ->
               let rng = Polytm_util.Rng.create (seed + t) in
               for _ = 1 to 60 do
                 let k = Polytm_util.Rng.int rng 16 in
                 match Polytm_util.Rng.int rng 4 with
                 | 0 -> ignore (AM.List_set.add set k)
                 | 1 -> ignore (AM.List_set.remove set k)
                 | 2 -> ignore (AM.List_set.size set)
                 | _ -> ignore (AM.List_set.contains set k)
               done)))
  in
  (AM.S.stats stm, info)

(* ---- taxonomy ---------------------------------------------------------- *)

let all_reasons =
  [
    AM.S.Lock_busy;
    AM.S.Read_invalid;
    AM.S.Window_broken;
    AM.S.Snapshot_too_old;
    AM.S.Killed;
    AM.S.Explicit;
  ]

let test_taxonomy_complete () =
  (* cause_of_reason is an exhaustive match, so a new abort_reason
     without a classification is a compile error; here we check the
     mapping is injective and covers the whole cause taxonomy. *)
  let causes = List.map AM.S.cause_of_reason all_reasons in
  Alcotest.(check int) "as many causes as reasons" (List.length all_reasons)
    T.num_causes;
  Alcotest.(check bool) "mapping is injective" true
    (List.length (List.sort_uniq compare causes) = List.length causes);
  Alcotest.(check bool) "mapping covers every cause" true
    (List.sort compare causes = List.sort compare T.all_causes)

let test_cause_metadata () =
  Alcotest.(check int) "all_causes length" T.num_causes
    (List.length T.all_causes);
  List.iteri
    (fun i c -> Alcotest.(check int) "cause_index dense" i (T.cause_index c))
    T.all_causes;
  let distinct f =
    List.length (List.sort_uniq compare (List.map f T.all_causes))
    = T.num_causes
  in
  Alcotest.(check bool) "labels distinct" true (distinct T.cause_label);
  Alcotest.(check bool) "short names distinct" true (distinct T.cause_short)

(* ---- seeded determinism ------------------------------------------------- *)

let record_run seed =
  let recorder = T.Recorder.create () in
  let stats, info = run_workload ~sink:(T.Recorder.sink recorder) ~seed () in
  (T.Recorder.events recorder, stats, info)

let test_seeded_trace_deterministic () =
  let ev1, st1, _ = record_run 5 in
  let ev2, st2, _ = record_run 5 in
  Alcotest.(check bool) "same seed: identical event lists" true (ev1 = ev2);
  Alcotest.(check bool) "same seed: identical stats" true (st1 = st2);
  Alcotest.(check string) "same seed: byte-identical chrome trace"
    (T.Json.to_string (T.Export.chrome_trace ev1))
    (T.Json.to_string (T.Export.chrome_trace ev2));
  Alcotest.(check string) "same seed: byte-identical events json"
    (T.Json.to_string (T.Export.events_json ev1))
    (T.Json.to_string (T.Export.events_json ev2));
  let ev3, _, _ = record_run 6 in
  Alcotest.(check bool) "different seed: different trace" true (ev1 <> ev3)

let test_workload_emits_aborts () =
  (* The contended workload must exercise the abort paths, otherwise
     the determinism test above proves little. *)
  let ev, _, _ = record_run 5 in
  let aborts =
    List.filter (fun e -> match e.T.kind with T.Abort _ -> true | _ -> false) ev
  in
  Alcotest.(check bool) "workload aborts some transactions" true
    (List.length aborts > 0);
  let labels =
    List.sort_uniq compare (List.map (fun e -> e.T.label) ev)
  in
  Alcotest.(check bool) "all events carry call-site labels" true
    (List.for_all
       (fun l -> List.mem l [ "add"; "remove"; "contains"; "size" ])
       labels)

(* ---- zero-cost hook ----------------------------------------------------- *)

let test_no_sink_leaves_run_identical () =
  let st_off, info_off = run_workload ~seed:9 () in
  let recorder = T.Recorder.create () in
  let st_on, info_on =
    run_workload ~sink:(T.Recorder.sink recorder) ~seed:9 ()
  in
  (* Emission is uncharged under the simulator, so the schedule, the
     charged step count and every stats counter are unchanged by the
     sink being installed. *)
  Alcotest.(check bool) "stats identical with and without sink" true
    (st_off = st_on);
  Alcotest.(check int) "charged steps identical" info_off.Sim.steps
    info_on.Sim.steps;
  Alcotest.(check bool) "the instrumented run did record events" true
    (T.Recorder.events recorder <> [])

(* ---- golden exporters --------------------------------------------------- *)

let ev time thread serial label kind = { T.time; thread; serial; label; kind }

let golden_events =
  [
    ev 0 1 10 "add" (T.Begin { sem = "elastic"; attempt = 1 });
    ev 1 1 10 "add" (T.Read { loc = 3 });
    ev 2 1 10 "add" (T.Write { loc = 3 });
    ev 3 1 10 "add" (T.Lock_acquire { loc = 3 });
    ev 4 1 10 "add" (T.Commit { reads = 1; writes = 1; lock_hold = 1 });
    ev 5 2 11 "" (T.Begin { sem = "classic"; attempt = 2 });
    ev 6 2 11 "" (T.Abort { cause = T.Lock_busy; reads = 2; writes = 0 });
  ]

let test_golden_chrome_trace () =
  let expected =
    "{\"traceEvents\":["
    ^ "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"golden\"}},"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"vthread 1\"}},"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":2,\"args\":{\"name\":\"vthread 2\"}},"
    ^ "{\"name\":\"lock-acquire\",\"cat\":\"lock\",\"ph\":\"i\",\"ts\":3,\"pid\":0,\"tid\":1,\"s\":\"t\",\"args\":{\"loc\":3}},"
    ^ "{\"name\":\"add\",\"cat\":\"tx\",\"ph\":\"X\",\"ts\":0,\"dur\":4,\"pid\":0,\"tid\":1,\"args\":{\"serial\":10,\"sem\":\"elastic\",\"attempt\":1,\"outcome\":\"commit\",\"reads\":1,\"writes\":1,\"lock_hold\":1}},"
    ^ "{\"name\":\"tx:classic\",\"cat\":\"tx\",\"ph\":\"X\",\"ts\":5,\"dur\":1,\"pid\":0,\"tid\":2,\"args\":{\"serial\":11,\"sem\":\"classic\",\"attempt\":2,\"outcome\":\"abort\",\"cause\":\"lock-busy\",\"reads\":2,\"writes\":0}}"
    ^ "],\"displayTimeUnit\":\"ms\"}"
  in
  Alcotest.(check string) "chrome trace golden" expected
    (T.Json.to_string (T.Export.chrome_trace ~process_name:"golden" golden_events))

let test_golden_events_json () =
  let expected =
    "[{\"time\":0,\"thread\":1,\"serial\":10,\"label\":\"add\",\"type\":\"begin\",\"sem\":\"elastic\",\"attempt\":1},"
    ^ "{\"time\":1,\"thread\":1,\"serial\":10,\"label\":\"add\",\"type\":\"read\",\"loc\":3},"
    ^ "{\"time\":2,\"thread\":1,\"serial\":10,\"label\":\"add\",\"type\":\"write\",\"loc\":3},"
    ^ "{\"time\":3,\"thread\":1,\"serial\":10,\"label\":\"add\",\"type\":\"lock\",\"loc\":3},"
    ^ "{\"time\":4,\"thread\":1,\"serial\":10,\"label\":\"add\",\"type\":\"commit\",\"reads\":1,\"writes\":1,\"lock_hold\":1},"
    ^ "{\"time\":5,\"thread\":2,\"serial\":11,\"label\":\"\",\"type\":\"begin\",\"sem\":\"classic\",\"attempt\":2},"
    ^ "{\"time\":6,\"thread\":2,\"serial\":11,\"label\":\"\",\"type\":\"abort\",\"cause\":\"lock-busy\",\"reads\":2,\"writes\":0}]"
  in
  Alcotest.(check string) "events json golden" expected
    (T.Json.to_string (T.Export.events_json golden_events))

let test_json_escaping_and_floats () =
  Alcotest.(check string) "string escaping"
    "\"a\\\"b\\\\c\\n\\u0001\""
    (T.Json.to_string (T.Json.Str "a\"b\\c\n\x01"));
  Alcotest.(check string) "integral float" "2.0"
    (T.Json.to_string (T.Json.Float 2.));
  Alcotest.(check string) "nan degrades to null" "null"
    (T.Json.to_string (T.Json.Float Float.nan))

(* ---- aggregation -------------------------------------------------------- *)

let test_agg_of_events () =
  let snap = T.Agg.of_events golden_events in
  let t = snap.T.Agg.total in
  Alcotest.(check int) "attempts" 2 t.T.Agg.attempts;
  Alcotest.(check int) "commits" 1 t.T.Agg.commits;
  Alcotest.(check int) "aborts" 1 t.T.Agg.aborts;
  Alcotest.(check int) "lock-busy aborts" 1 (T.Agg.abort_count t T.Lock_busy);
  Alcotest.(check int) "no read-validation aborts" 0
    (T.Agg.abort_count t T.Read_validation);
  Alcotest.(check int) "retries (attempt > 1)" 1 t.T.Agg.retries;
  Alcotest.(check int) "lock acquires" 1 t.T.Agg.lock_acquires;
  Alcotest.(check int) "reads committed" 1 t.T.Agg.reads_committed;
  Alcotest.(check int) "writes committed" 1 t.T.Agg.writes_committed;
  Alcotest.(check int) "max read set (incl. aborts)" 2 t.T.Agg.max_read_set;
  Alcotest.(check int) "lock hold" 1 t.T.Agg.lock_hold;
  Alcotest.(check (list string)) "sites sorted by label" [ ""; "add" ]
    (List.map (fun s -> s.T.Agg.site) snap.T.Agg.sites)

let test_agg_streaming_matches_batch () =
  let ev, _, _ = record_run 5 in
  let agg = T.Agg.create () in
  List.iter (T.Agg.sink agg).T.emit ev;
  Alcotest.(check bool) "streaming snapshot = of_events" true
    (T.Agg.snapshot agg = T.Agg.of_events ev)

(* ---- backends ----------------------------------------------------------- *)

let test_recorder_accesses_filter () =
  let r = T.Recorder.create ~accesses:false () in
  List.iter (T.Recorder.sink r).T.emit golden_events;
  Alcotest.(check int) "reads/writes dropped at the door" 5
    (List.length (T.Recorder.events r));
  Alcotest.(check bool) "no access events survive" true
    (List.for_all
       (fun e ->
         match e.T.kind with T.Read _ | T.Write _ -> false | _ -> true)
       (T.Recorder.events r))

let test_recorder_capacity () =
  let r = T.Recorder.create ~capacity:3 () in
  List.iter (T.Recorder.sink r).T.emit golden_events;
  Alcotest.(check int) "keeps the first [capacity]" 3
    (List.length (T.Recorder.events r));
  Alcotest.(check int) "counts the dropped tail" 4 (T.Recorder.dropped r)

let test_ring_overwrites_oldest () =
  let ring = T.Ring.create ~lanes:2 ~capacity:4 () in
  let sink = T.Ring.sink ring in
  for i = 1 to 6 do
    sink.T.emit (ev i 0 i "" (T.Read { loc = i }))
  done;
  let kept = T.Ring.drain ring in
  Alcotest.(check int) "lane keeps the most recent capacity" 4
    (List.length kept);
  Alcotest.(check (list int)) "oldest overwritten" [ 3; 4; 5; 6 ]
    (List.map (fun e -> e.T.time) kept);
  Alcotest.(check int) "overwritten counted" 2 (T.Ring.overwritten ring);
  Alcotest.(check (list int)) "drain resets" []
    (List.map (fun e -> e.T.time) (T.Ring.drain ring))

let test_ring_merges_sorted () =
  let ring = T.Ring.create ~lanes:4 ~capacity:8 () in
  let sink = T.Ring.sink ring in
  (* Interleave emissions from three threads with clashing times; the
     drain must come back sorted by (time, thread, serial). *)
  sink.T.emit (ev 5 2 1 "" (T.Read { loc = 0 }));
  sink.T.emit (ev 1 0 2 "" (T.Read { loc = 0 }));
  sink.T.emit (ev 5 1 3 "" (T.Read { loc = 0 }));
  sink.T.emit (ev 2 0 4 "" (T.Read { loc = 0 }));
  Alcotest.(check (list (pair int int)))
    "sorted by (time, thread)"
    [ (1, 0); (2, 0); (5, 1); (5, 2) ]
    (List.map (fun e -> (e.T.time, e.T.thread)) (T.Ring.drain ring))

let test_fan_out () =
  let r1 = T.Recorder.create () and r2 = T.Recorder.create () in
  let sink = T.fan_out [ T.Recorder.sink r1; T.Recorder.sink r2 ] in
  List.iter sink.T.emit golden_events;
  Alcotest.(check bool) "both sinks see every event" true
    (T.Recorder.events r1 = golden_events
    && T.Recorder.events r2 = golden_events);
  (T.null).T.emit (List.hd golden_events)

(* ---- domains runtime ---------------------------------------------------- *)

module SD = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)

let test_domains_ring_capture () =
  (* Under real domains: per-domain ring lanes, drained after join.
     Event counts are schedule-dependent, so assert structure only:
     every commit is preceded by a begin of the same serial, and the
     aggregate balances. *)
  let stm = SD.create () in
  let ring = T.Ring.create () in
  SD.set_sink stm (Some (T.Ring.sink ring));
  let v = SD.tvar stm 0 in
  let worker () =
    for _ = 1 to 50 do
      SD.atomically ~label:"incr" stm (fun tx ->
          SD.write tx v (SD.read tx v + 1))
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  SD.set_sink stm None;
  Alcotest.(check int) "all increments committed" 150
    (SD.atomically stm (fun tx -> SD.read tx v));
  let snap = T.Agg.of_events (T.Ring.drain ring) in
  let t = snap.T.Agg.total in
  Alcotest.(check bool) "captured the committed transactions" true
    (t.T.Agg.commits >= 150 && t.T.Agg.attempts >= t.T.Agg.commits);
  Alcotest.(check (list string)) "one labelled site" [ "incr" ]
    (List.map (fun s -> s.T.Agg.site) snap.T.Agg.sites)

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "taxonomy complete" `Quick test_taxonomy_complete;
      Alcotest.test_case "cause metadata" `Quick test_cause_metadata;
      Alcotest.test_case "seeded trace deterministic" `Quick
        test_seeded_trace_deterministic;
      Alcotest.test_case "workload emits aborts" `Quick
        test_workload_emits_aborts;
      Alcotest.test_case "no sink leaves run identical" `Quick
        test_no_sink_leaves_run_identical;
      Alcotest.test_case "golden chrome trace" `Quick test_golden_chrome_trace;
      Alcotest.test_case "golden events json" `Quick test_golden_events_json;
      Alcotest.test_case "json escaping and floats" `Quick
        test_json_escaping_and_floats;
      Alcotest.test_case "agg of events" `Quick test_agg_of_events;
      Alcotest.test_case "agg streaming = batch" `Quick
        test_agg_streaming_matches_batch;
      Alcotest.test_case "recorder accesses filter" `Quick
        test_recorder_accesses_filter;
      Alcotest.test_case "recorder capacity" `Quick test_recorder_capacity;
      Alcotest.test_case "ring overwrites oldest" `Quick
        test_ring_overwrites_oldest;
      Alcotest.test_case "ring merges sorted" `Quick test_ring_merges_sorted;
      Alcotest.test_case "fan out" `Quick test_fan_out;
      Alcotest.test_case "domains ring capture" `Quick
        test_domains_ring_capture;
    ] )
