(** Deterministic scenarios whose byte-level outputs are pinned as
    golden files under [test/goldens/].

    The simulator charges a virtual cost per shared access, so every
    telemetry timestamp and every figure throughput is a pure function
    of the seed and the charge sequence.  The hot-path optimisation
    work (flat read-sets, hashed write-sets, descriptor reuse) is
    required to leave those charge sequences untouched: same seed ⇒
    byte-identical telemetry traces and identical E2–E4 figure
    outputs.  These scenarios are the enforcement mechanism — they are
    rendered to strings both by [gen_goldens.exe] (which writes the
    files) and by the [goldens] test suite (which compares against the
    committed files byte for byte).

    Regenerate deliberately with

      dune exec test/gen_goldens.exe -- test/goldens

    and inspect the diff: any change here means observable behaviour
    changed. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module AM = Polytm_structs.Adapters.Make (Polytm_runtime.Sim_runtime)
module T = Polytm_telemetry
module F = Polytm_bench_kit.Figures
module Report = Polytm_bench_kit.Report
module W = Polytm_bench_kit.Workload

(* A contended elastic+classic list-set workload under the seeded
   random scheduler: commits, retries, lock-busy aborts and elastic
   cuts all fire, and every event carries a virtual timestamp, so the
   rendered trace pins the full charge sequence of the STM hot paths
   (reads, validation, commit locking, write-back). *)
let trace_json ?algo ~seed () =
  let recorder = T.Recorder.create () in
  let stm = AM.S.create ?algo () in
  AM.S.set_sink stm (Some (T.Recorder.sink recorder));
  let set = AM.List_set.create ~parse_sem:Polytm.Semantics.Elastic stm in
  let (), _info =
    Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
        R.parallel
          (List.init 4 (fun t () ->
               let rng = Polytm_util.Rng.create (seed + t) in
               for _ = 1 to 60 do
                 let k = Polytm_util.Rng.int rng 16 in
                 match Polytm_util.Rng.int rng 4 with
                 | 0 -> ignore (AM.List_set.add set k)
                 | 1 -> ignore (AM.List_set.remove set k)
                 | 2 -> ignore (AM.List_set.size set)
                 | _ -> ignore (AM.List_set.contains set k)
               done)))
  in
  T.Json.to_string (T.Export.events_json (T.Recorder.events recorder)) ^ "\n"

(* A reduced E2–E4 sweep (Figures 5/7/9 share the run matrix): every
   system, two thread counts, with telemetry aggregation attached.
   The JSON document includes throughputs (virtual-time derived) and
   the per-site abort breakdowns, so any charge drift in any system
   shows up as a diff. *)
let figures_json () =
  let p =
    {
      F.default_params with
      F.spec = W.spec_of_size 64;
      duration = 20_000;
      threads_list = [ 1; 4 ];
    }
  in
  let m = F.run_all p in
  T.Json.to_string (Report.matrix_json m) ^ "\n"

(* Filename -> generator.  The [goldens] alcotest suite and
   [gen_goldens.exe] both iterate this list. *)
let all =
  [
    ("trace_seed5.json", fun () -> trace_json ~seed:5 ());
    ("trace_seed9.json", fun () -> trace_json ~seed:9 ());
    ("figures_small.json", figures_json);
  ]
