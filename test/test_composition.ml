(* Composition: the property Section 2.2 celebrates and Section 4.1
   shows the early relaxations losing.

   - Bob composes Alice's parses into an atomic addIfAbsent: under
     exhaustive exploration, the two symmetric addIfAbsent calls never
     both insert (classic outer transaction), even though the inner
     operations are elastic.
   - The same composite built with EARLY RELEASE is broken: the
     explorer finds a schedule where addIfAbsent(x unless y) and
     addIfAbsent(y unless x) both insert — the concrete inconsistency
     the paper describes. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module Explore = Polytm_runtime.Explore
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module LS = Polytm_structs.Stm_list_set.Make (S)
open Polytm

let test_add_if_absent_atomic_exhaustive () =
  (* Alice's list uses elastic parses; Bob's addIfAbsent is the
     classic composite from Stm_list_set. *)
  let program () =
    let stm = S.create ~cm:Contention.Suicide () in
    let t = LS.create ~parse_sem:Semantics.Elastic stm in
    let t1 =
      Sim.spawn (fun () -> ignore (LS.add_if_absent t 1 ~absent_witness:2))
    in
    let t2 =
      Sim.spawn (fun () -> ignore (LS.add_if_absent t 2 ~absent_witness:1))
    in
    Sim.join t1;
    Sim.join t2;
    let contents = LS.to_list t in
    (* One of them must win; both inserting violates the composite's
       atomicity. *)
    assert (contents = [ 1 ] || contents = [ 2 ])
  in
  let outcome =
    Explore.check ~max_executions:60_000 ~max_depth:40 ~step_limit:2_000
      program
  in
  Alcotest.(check bool) "explored schedules" true
    (outcome.Explore.executions > 50)

(* Bob's cross-structure composite: insert [v] into [target] unless
   [witness] is present in [other].  When [release_witness] is set,
   the witness read is released after checking (the Herlihy et al.
   early-release idiom): the composite's two halves then touch
   disjoint locations and nothing revalidates the witness. *)
let add_unless ~release_witness stm ~target ~other v ~witness =
  S.atomically stm (fun tx ->
      let witness_ptr, witness_node = LS.find tx other witness in
      let witness_present =
        match witness_node with
        | LS.Node { value; _ } -> value = witness
        | LS.Nil -> false
      in
      if release_witness then S.release tx witness_ptr;
      if witness_present then false
      else begin
        (* Consume some time so the race window is wide. *)
        Sim.tick 5;
        match LS.find tx target v with
        | _, LS.Node { value; _ } when value = v -> false
        | ptr, cur ->
            S.write tx ptr (LS.Node { value = v; next = S.tvar stm cur });
            true
      end)

(* Two symmetric composites: add 1 to L1 unless 2 is in L2, and add 2
   to L2 unless 1 is in L1.  At most one may succeed.  Returns whether
   BOTH succeeded (the anomaly) under one random schedule. *)
let symmetric_run ~release_witness seed =
  let stm = S.create ~cm:Contention.Suicide () in
  let l1 = LS.create stm and l2 = LS.create stm in
  let (), _ =
    Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
        let t1 =
          Sim.spawn (fun () ->
              ignore
                (add_unless ~release_witness stm ~target:l1 ~other:l2 1
                   ~witness:2))
        in
        let t2 =
          Sim.spawn (fun () ->
              ignore
                (add_unless ~release_witness stm ~target:l2 ~other:l1 2
                   ~witness:1))
        in
        Sim.join t1;
        Sim.join t2)
  in
  LS.to_list l1 = [ 1 ] && LS.to_list l2 = [ 2 ]

(* The full schedule space here is ~C(30,15) — too large to exhaust —
   so the hazard hunt uses CHESS-style preemption bounding (<= 2
   preemptions) plus 200 seeded random schedules; retry-budget
   exhaustion under unfair bounded schedules is pruned as benign. *)
let symmetric_program ~release_witness () =
  let stm = S.create ~cm:Contention.Suicide () in
  let l1 = LS.create stm and l2 = LS.create stm in
  let t1 =
    Sim.spawn (fun () ->
        ignore
          (add_unless ~release_witness stm ~target:l1 ~other:l2 1 ~witness:2))
  in
  let t2 =
    Sim.spawn (fun () ->
        ignore
          (add_unless ~release_witness stm ~target:l2 ~other:l1 2 ~witness:1))
  in
  Sim.join t1;
  Sim.join t2;
  assert (not (LS.to_list l1 = [ 1 ] && LS.to_list l2 = [ 2 ]))

let prune_retry_exhaustion = function
  | S.Too_many_attempts _ -> true
  | _ -> false

let test_early_release_breaks_composition () =
  let hits = ref 0 in
  for seed = 1 to 200 do
    if symmetric_run ~release_witness:true seed then incr hits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hazard observed (%d/200 schedules)" !hits)
    true (!hits > 0);
  (* And the bounded model checker pinpoints it without randomness. *)
  let found =
    try
      ignore
        (Explore.check ~max_executions:100_000 ~max_preemptions:2
           ~prune_exn:prune_retry_exhaustion
           (symmetric_program ~release_witness:true));
      false
    with Explore.Violation _ -> true
  in
  Alcotest.(check bool) "explorer (<=2 preemptions) finds it" true found

let test_without_release_same_composite_is_atomic () =
  (* Identical code without the release: no schedule breaks it —
     pinpointing the release as the culprit. *)
  for seed = 1 to 200 do
    Alcotest.(check bool)
      (Printf.sprintf "atomic without release (seed %d)" seed)
      false
      (symmetric_run ~release_witness:false seed)
  done;
  let outcome =
    Explore.check ~max_executions:100_000 ~max_preemptions:2
      ~prune_exn:prune_retry_exhaustion
      (symmetric_program ~release_witness:false)
  in
  Alcotest.(check bool) "bounded exploration finds nothing" true
    (outcome.Explore.executions > 100)

let test_queue_compose_with_set () =
  (* Cross-structure composition: move an element from a set into a
     queue atomically; an observer never sees it in both or neither. *)
  for seed = 1 to 10 do
    let stm = S.create () in
    let set = LS.create stm in
    let module Q = Polytm_structs.Stm_queue.Make (S) in
    let queue = Q.create stm in
    ignore (LS.add set 7);
    let anomalies = ref 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let mover =
            Sim.spawn (fun () ->
                S.atomically stm (fun tx ->
                    if LS.remove set 7 then Q.enqueue_tx tx queue 7))
          in
          let observer =
            Sim.spawn (fun () ->
                for _ = 1 to 3 do
                  let in_set, in_queue =
                    S.atomically stm (fun _tx ->
                        (LS.contains set 7, Q.to_list queue = [ 7 ]))
                  in
                  if in_set = in_queue then incr anomalies
                done)
          in
          Sim.join mover;
          Sim.join observer)
    in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: exactly one holder" seed)
      0 !anomalies
  done

let suite =
  ( "composition",
    [
      Alcotest.test_case "addIfAbsent atomic (exhaustive)" `Quick
        test_add_if_absent_atomic_exhaustive;
      Alcotest.test_case "early release breaks composition" `Quick
        test_early_release_breaks_composition;
      Alcotest.test_case "same composite atomic without release" `Quick
        test_without_release_same_composite_is_atomic;
      Alcotest.test_case "queue/set cross composition" `Quick
        test_queue_compose_with_set;
    ] )
