(* TL2-vs-NORec differential battery.

   The NORec backend must be observationally equivalent to TL2: any
   seeded workload, executed under the deterministic simulator on
   either algorithm, must leave the same committed structure contents
   and conserve the same invariants.  Divergence in the read path
   (value vs version validation), the commit protocol (sequence lock
   vs per-location locks) or the semantics layers (elastic windows,
   snapshot versions) would surface here as a differing final state.

   Determinism note: the two algorithms schedule differently under the
   same simulator seed (they touch different shared words), so we do
   NOT compare schedule-dependent observables like queue pop order or
   abort counts.  Instead each property uses workloads whose final
   state is schedule-independent — per-thread disjoint key slices, or
   a conserved bank total — and checks both algorithms against the
   same sequential oracle.

   The battery also pins NORec's abort-cause taxonomy: with no
   per-location lock words there is no lock to find busy and no owner
   to kill, so every abort must be a value-validation cause
   (read/window invalidation, snapshot exhaustion, or explicit). *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module A = Polytm_structs.Adapters
module AM = Polytm_structs.Adapters.Make (Polytm_runtime.Sim_runtime)
module S = AM.S
module Conf = Polytm_bench_kit.Conformance
module Rng = Polytm_util.Rng

let both_algos = [ `Tl2; `Norec ]

(* ------------------------------------------------------------------ *)
(* Seeded workloads with schedule-independent final state.             *)
(* ------------------------------------------------------------------ *)

type op = Add of int | Remove of int | Contains of int | Size

(* Thread [t] mutates only its own key slice [t*span, (t+1)*span), so
   the final membership of every key is fixed by its owner's program
   order alone; [Contains]/[Size] range over the whole keyspace purely
   to create read-write contention across threads. *)
let ops_for ~seed ~threads ~span ~ops t =
  let rng = Rng.create ((seed * 31) + t) in
  List.init ops (fun _ ->
      let k = (t * span) + Rng.int rng span in
      match Rng.int rng 6 with
      | 0 -> Remove k
      | 1 -> Contains (Rng.int rng (threads * span))
      | 2 -> Size
      | _ -> Add k)

let sequential_oracle ~seed ~threads ~span ~ops =
  let present = Hashtbl.create 64 in
  for t = 0 to threads - 1 do
    List.iter
      (function
        | Add k -> Hashtbl.replace present k ()
        | Remove k -> Hashtbl.remove present k
        | Contains _ | Size -> ())
      (ops_for ~seed ~threads ~span ~ops t)
  done;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) present [])

let structures =
  [
    ("stm-list", fun ~profile stm -> AM.stm_list ~profile stm);
    ("stm-hash", fun ~profile stm -> AM.stm_hash ~profile stm);
    ("stm-skiplist", fun ~profile stm -> AM.stm_skiplist ~profile stm);
  ]

let profiles =
  [ A.classic_profile; A.elastic_classic_profile; A.mixed_profile ]

let run_set_workload ~algo ~struct_idx ~profile_idx ~seed ~threads ~span ~ops
    =
  let stm = S.create ~algo () in
  let _, make = List.nth structures struct_idx in
  let set = make ~profile:(List.nth profiles profile_idx) stm in
  let (), _ =
    Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
        R.parallel
          (List.init threads (fun t () ->
               List.iter
                 (function
                   | Add k -> ignore (set.A.add k)
                   | Remove k -> ignore (set.A.remove k)
                   | Contains k -> ignore (set.A.contains k)
                   | Size -> ignore (set.A.size ()))
                 (ops_for ~seed ~threads ~span ~ops t))))
  in
  (List.sort compare (set.A.to_list ()), S.stats stm)

(* Every NORec abort must be explained by a value-validation cause:
   no lock word is ever published, so [Lock_busy] (spin budget on a
   busy lock) and [Killed] (a CM killing a lock owner) are impossible
   by construction. *)
let check_norec_taxonomy ?(ctx = "") (st : S.stats) =
  let lbl what = Printf.sprintf "norec %s%s" what ctx in
  Alcotest.(check int) (lbl "lock_busy = 0") 0 st.S.lock_busy;
  Alcotest.(check int) (lbl "killed = 0") 0 st.S.killed;
  Alcotest.(check int)
    (lbl "aborts all value-validation")
    st.S.aborts
    (st.S.read_invalid + st.S.window_broken + st.S.snapshot_too_old
   + st.S.explicit_aborts)

(* Property 1: same committed set contents on both algorithms, both
   equal to the sequential oracle, across structure × profile. *)
let differential_sets_property =
  let case_gen =
    QCheck.Gen.(
      int_range 1 100_000 >>= fun seed ->
      int_range 0 2 >>= fun struct_idx ->
      int_range 0 2 >>= fun profile_idx ->
      int_range 2 4 >>= fun threads ->
      int_range 6 16 >>= fun ops ->
      return (seed, struct_idx, profile_idx, threads, ops))
  in
  QCheck.Test.make ~count:150
    ~name:"TL2 and NORec commit identical set contents"
    (QCheck.make
       ~print:(fun (seed, si, pi_, threads, ops) ->
         Printf.sprintf "seed=%d struct=%s profile=%s threads=%d ops=%d" seed
           (fst (List.nth structures si))
           (List.nth profiles pi_).A.profile_name
           threads ops)
       case_gen)
    (fun (seed, struct_idx, profile_idx, threads, ops) ->
      let span = 6 in
      let expect = sequential_oracle ~seed ~threads ~span ~ops in
      List.for_all
        (fun algo ->
          let got, st =
            run_set_workload ~algo ~struct_idx ~profile_idx ~seed ~threads
              ~span ~ops
          in
          (match algo with
          | `Norec ->
              check_norec_taxonomy
                ~ctx:(Printf.sprintf " (seed %d)" seed)
                st
          | `Tl2 -> ());
          got = expect)
        both_algos)

(* Regression: the elastic window must be validated by VERSION under
   NORec.  The list remove materialises its conflict with a
   same-value rewrite of the unlinked node's pointer
   (stm_list_set.ml) — invisible to a value-checked window, because
   write-back republishes the identical node pointer — so two
   adjacent removes could both pass window validation and commit,
   leaving the second victim reachable.  The conformance matrix
   originally caught this as a non-linearizable size(); this pins the
   minimal race directly: adjacent removes under an elastic parse
   profile, many seeds, victims must stay dead. *)
let test_adjacent_remove_race () =
  for seed = 1 to 60 do
    List.iter
      (fun profile ->
        let stm = S.create ~algo:`Norec () in
        let set = AM.stm_list ~profile stm in
        let (), _ =
          Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
              for k = 0 to 7 do
                ignore (set.A.add k)
              done;
              R.parallel
                [
                  (fun () -> assert (set.A.remove 3));
                  (fun () -> assert (set.A.remove 4));
                ])
        in
        Alcotest.(check (list int))
          (Printf.sprintf "no resurrection (%s, seed %d)"
             profile.A.profile_name seed)
          [ 0; 1; 2; 5; 6; 7 ]
          (List.sort compare (set.A.to_list ())))
      [ A.elastic_classic_profile; A.mixed_profile ]
  done

(* Property 2: transfers over a shared account array — heavy
   write-write conflicts on both algorithms — conserve the total, and
   leave the exact per-account balances of the sequential oracle
   (account slices are disjoint per thread for the deposit half). *)
let differential_bank_property =
  let case_gen =
    QCheck.Gen.(
      int_range 1 100_000 >>= fun seed ->
      int_range 2 4 >>= fun threads ->
      int_range 5 12 >>= fun transfers ->
      int_range 3 6 >>= fun accounts ->
      return (seed, threads, transfers, accounts))
  in
  QCheck.Test.make ~count:60
    ~name:"TL2 and NORec conserve the bank total"
    (QCheck.make
       ~print:(fun (seed, threads, transfers, accounts) ->
         Printf.sprintf "seed=%d threads=%d transfers=%d accounts=%d" seed
           threads transfers accounts)
       case_gen)
    (fun (seed, threads, transfers, accounts) ->
      List.for_all
        (fun algo ->
          let stm = S.create ~algo ~max_attempts:50 () in
          let arr = Array.init accounts (fun _ -> S.tvar stm 100) in
          let (), _ =
            Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
                R.parallel
                  (List.init threads (fun t () ->
                       let rng = Rng.create ((seed * 17) + t) in
                       for _ = 1 to transfers do
                         let src = Rng.int rng accounts
                         and dst = Rng.int rng accounts
                         and amount = Rng.int rng 40 in
                         S.atomically stm (fun tx ->
                             S.write tx arr.(src) (S.read tx arr.(src) - amount);
                             S.write tx arr.(dst) (S.read tx arr.(dst) + amount))
                       done)))
          in
          let total =
            S.atomically stm (fun tx ->
                Array.fold_left (fun acc a -> acc + S.read tx a) 0 arr)
          in
          (match algo with
          | `Norec -> check_norec_taxonomy ~ctx:(Printf.sprintf " (seed %d)" seed) (S.stats stm)
          | `Tl2 -> ());
          total = accounts * 100)
        both_algos)

(* ------------------------------------------------------------------ *)
(* Taxonomy under hostile contention management.                       *)
(* ------------------------------------------------------------------ *)

(* Greedy is the kill-happiest CM, yet under NORec there is no owner
   to kill: every conflict must resolve through value validation, the
   counter must still reach the oracle, and [killed] stays zero. *)
let test_norec_taxonomy_under_greedy () =
  for seed = 1 to 20 do
    let stm = S.create ~algo:`Norec ~cm:Polytm.Contention.Greedy () in
    let v = S.tvar stm 0 in
    let threads = 4 and ops = 8 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init threads (fun _ () ->
                 for _ = 1 to ops do
                   S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
                 done)))
    in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: oracle" seed)
      (threads * ops)
      (S.atomically stm (fun tx -> S.read tx v));
    check_norec_taxonomy ~ctx:(Printf.sprintf " (seed %d)" seed)
      (S.stats stm)
  done

(* Read-only transactions under NORec commit without ever touching the
   sequence lock: the free read-only path is shared with TL2 and the
   [ro_commits] counter must account for all of them. *)
let test_norec_read_only_commits_free () =
  let stm = S.create ~algo:`Norec () in
  let v = S.tvar stm 1 and w = S.tvar stm 2 in
  for _ = 1 to 50 do
    Alcotest.(check int) "sum" 3
      (S.atomically stm (fun tx -> S.read tx v + S.read tx w))
  done;
  let st = S.stats stm in
  Alcotest.(check int) "all commits read-only" 50 st.S.ro_commits;
  Alcotest.(check int) "no aborts" 0 st.S.aborts

(* ------------------------------------------------------------------ *)
(* The standing self-test: broken validation must be caught.           *)
(* ------------------------------------------------------------------ *)

(* [unsafe_skip_validation] turns NORec's value revalidation off.  The
   backend then loses updates under write-write races — shown directly
   here (the differential oracle diverges) and via the conformance
   harness (the [buggy-norec-validation] impl is rejected with a
   counterexample).  If either check stops failing, the battery has
   lost its teeth. *)
let test_broken_validation_diverges () =
  let lost_updates = ref false in
  let seed = ref 1 in
  while (not !lost_updates) && !seed <= 40 do
    let stm = S.create ~algo:`Norec ~unsafe_skip_validation:true () in
    let v = S.tvar stm 0 in
    let threads = 4 and ops = 8 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched !seed) (fun () ->
          R.parallel
            (List.init threads (fun _ () ->
                 for _ = 1 to ops do
                   S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
                 done)))
    in
    let final = S.atomically stm (fun tx -> S.read tx v) in
    if final < threads * ops then lost_updates := true;
    incr seed
  done;
  Alcotest.(check bool) "skip_validation loses updates" true !lost_updates

let contains_sub hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
  at 0

let test_harness_rejects_broken_validation () =
  match
    Conf.run_sim ~algo:`Norec ~name:"buggy-norec-validation" ~seed:42
      ~iters:30 ()
  with
  | Conf.Fail msg ->
      Alcotest.(check bool) "counterexample names the impl" true
        (contains_sub msg "buggy-norec-validation")
  | Conf.Pass _ ->
      Alcotest.fail "conformance accepted the broken NORec validation"

(* The knob is a NORec self-test hook, not API surface for TL2. *)
let test_skip_validation_rejected_for_tl2 () =
  let rejected =
    try
      ignore (S.create ~algo:`Tl2 ~unsafe_skip_validation:true ());
      false
    with S.Invalid_operation _ -> true
  in
  Alcotest.(check bool) "rejected" true rejected

(* ------------------------------------------------------------------ *)
(* Cross-algorithm hosting: one process, one runtime, two backends.    *)
(* ------------------------------------------------------------------ *)

(* The polymorphism claim made concrete: a NORec-backed map and a
   TL2-backed set coexist; per-instance transactions stay isolated and
   both final states match the oracle. *)
let test_two_backends_side_by_side () =
  for seed = 1 to 10 do
    let tl2 = S.create () and norec = S.create ~algo:`Norec () in
    Alcotest.(check bool) "algo accessors" true
      (S.algo tl2 = `Tl2 && S.algo norec = `Norec);
    let set_a = AM.stm_list tl2 in
    let set_b = AM.stm_hash ~profile:A.mixed_profile norec in
    let threads = 3 and span = 5 and ops = 10 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init threads (fun t () ->
                 List.iter
                   (fun op ->
                     match op with
                     | Add k ->
                         ignore (set_a.A.add k);
                         ignore (set_b.A.add k)
                     | Remove k ->
                         ignore (set_a.A.remove k);
                         ignore (set_b.A.remove k)
                     | Contains k ->
                         ignore (set_a.A.contains k);
                         ignore (set_b.A.contains k)
                     | Size ->
                         ignore (set_a.A.size ());
                         ignore (set_b.A.size ()))
                   (ops_for ~seed ~threads ~span ~ops t))))
    in
    let expect = sequential_oracle ~seed ~threads ~span ~ops in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: TL2 set" seed)
      expect
      (List.sort compare (set_a.A.to_list ()));
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: NORec set" seed)
      expect
      (List.sort compare (set_b.A.to_list ()))
  done

let suite =
  ( "norec differential",
    [
      Test_seed.to_alcotest differential_sets_property;
      Test_seed.to_alcotest differential_bank_property;
      Alcotest.test_case "adjacent removes cannot resurrect" `Quick
        test_adjacent_remove_race;
      Alcotest.test_case "taxonomy under Greedy" `Quick
        test_norec_taxonomy_under_greedy;
      Alcotest.test_case "read-only commits are free" `Quick
        test_norec_read_only_commits_free;
      Alcotest.test_case "broken validation loses updates" `Quick
        test_broken_validation_diverges;
      Alcotest.test_case "harness rejects broken validation" `Quick
        test_harness_rejects_broken_validation;
      Alcotest.test_case "skip_validation is NORec-only" `Quick
        test_skip_validation_rejected_for_tl2;
      Alcotest.test_case "two backends side by side" `Quick
        test_two_backends_side_by_side;
    ] )
