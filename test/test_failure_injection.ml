(* Failure injection: user code raising at arbitrary points inside
   transactions (including nested blocks, orelse branches and boosted
   operations) must never corrupt shared state, and the STM must stay
   fully usable afterwards. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module B = Polytm_structs.Boosted_set.Make (Polytm_runtime.Sim_runtime) (S)
module LS = Polytm_structs.Stm_list_set.Make (S)

exception Injected

let test_random_raises_conserve_money () =
  (* Transfers raise Injected at one of three points with probability
     ~1/3; every failed transfer must be fully discarded. *)
  for seed = 1 to 10 do
    let stm = S.create () in
    let n = 6 in
    let accounts = Array.init n (fun _ -> S.tvar stm 100) in
    let raised = ref 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun t () ->
                 let rng = Polytm_util.Rng.create (seed * 19 + t) in
                 for _ = 1 to 10 do
                   let src = Polytm_util.Rng.int rng n
                   and dst = Polytm_util.Rng.int rng n
                   and amount = Polytm_util.Rng.int rng 30
                   and crash = Polytm_util.Rng.int rng 9 in
                   try
                     S.atomically stm (fun tx ->
                         if crash = 0 then raise Injected;
                         let s = S.read tx accounts.(src) in
                         S.write tx accounts.(src) (s - amount);
                         if crash = 1 then raise Injected;
                         let d = S.read tx accounts.(dst) in
                         S.write tx accounts.(dst) (d + amount);
                         if crash = 2 then raise Injected)
                   with Injected -> incr raised
                 done)))
    in
    let total =
      S.atomically stm (fun tx ->
          Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
    in
    Alcotest.(check int) (Printf.sprintf "seed %d: conserved" seed) (n * 100)
      total;
    Alcotest.(check bool) "some failures actually injected" true (!raised > 0)
  done

let test_raise_inside_nested_block () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  (try
     S.atomically stm (fun tx ->
         S.write tx v 1;
         S.atomically stm (fun tx' ->
             S.write tx' v 2;
             raise Injected))
   with Injected -> ());
  (* The nested block flattened into the outer transaction: the raise
     aborts the WHOLE transaction, not just the inner part. *)
  Alcotest.(check int) "everything discarded" 0
    (S.atomically stm (fun tx -> S.read tx v))

let test_raise_in_orelse_branches () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  (* A raise in the first branch is not an `abort`: it must NOT fall
     through to the alternative, and must discard everything. *)
  (try
     ignore
       (S.atomically stm (fun tx ->
            S.orelse tx
              (fun tx ->
                S.write tx v 1;
                raise Injected)
              (fun tx ->
                S.write tx v 2;
                "never")))
   with Injected -> ());
  Alcotest.(check int) "no branch committed" 0
    (S.atomically stm (fun tx -> S.read tx v))

let test_raise_after_boosted_ops_compensates () =
  for seed = 1 to 10 do
    let stm = S.create () in
    let t = B.create () in
    S.atomically stm (fun tx -> ignore (B.add tx t 1));
    let rng = Polytm_util.Rng.create seed in
    for _ = 1 to 10 do
      let crash = Polytm_util.Rng.bool rng in
      try
        S.atomically stm (fun tx ->
            ignore (B.add tx t 2);
            ignore (B.remove tx t 1);
            if crash then raise Injected;
            ignore (B.remove tx t 2);
            ignore (B.add tx t 1))
      with Injected -> ()
    done;
    (* Every iteration is a no-op overall (commit path restores the
       original state; crash path compensates): the set must still be
       exactly {1}, with every abstract lock released. *)
    Alcotest.(check (list int)) (Printf.sprintf "seed %d: state intact" seed)
      [ 1 ] (B.to_list t);
    S.atomically stm (fun tx ->
        Alcotest.(check bool) "locks free again" true (B.contains tx t 1))
  done

(* Hook ordering under injected aborts, for every semantics the
   paper composes: compensations ([on_abort]) run newest-first, then
   finalisers ([on_cleanup]) newest-first; the commit path runs only
   the finalisers.  Boosting depends on exactly this order — inverses
   must undo in reverse call order while abstract locks release
   afterwards, whether or not the transaction made it. *)
let test_hook_ordering_on_injected_raise () =
  let semantics =
    [ Polytm.Semantics.Classic; Polytm.Semantics.Elastic;
      Polytm.Semantics.Snapshot ]
  in
  List.iter
    (fun sem ->
      let name = Polytm.Semantics.to_string sem in
      let stm = S.create () in
      let v = S.tvar stm 0 in
      let trace = ref [] in
      let log tag () = trace := tag :: !trace in
      (* Aborting run: undos newest-first, then cleanups newest-first. *)
      (try
         S.atomically stm ~sem (fun tx ->
             S.on_cleanup tx (log "cleanup-1");
             S.on_abort tx (log "undo-1");
             ignore (S.read tx v);
             if Polytm.Semantics.allows_write sem then S.write tx v 1;
             S.on_abort tx (log "undo-2");
             S.on_cleanup tx (log "cleanup-2");
             raise Injected)
       with Injected -> ());
      Alcotest.(check (list string))
        (name ^ ": abort runs undos newest-first, then cleanups")
        [ "undo-2"; "undo-1"; "cleanup-2"; "cleanup-1" ]
        (List.rev !trace);
      Alcotest.(check int)
        (name ^ ": effects discarded")
        0
        (S.atomically stm (fun tx -> S.read tx v));
      (* Committing run: no undos, cleanups newest-first. *)
      trace := [];
      S.atomically stm ~sem (fun tx ->
          S.on_abort tx (log "undo-never");
          S.on_cleanup tx (log "cleanup-1");
          ignore (S.read tx v);
          S.on_cleanup tx (log "cleanup-2"));
      Alcotest.(check (list string))
        (name ^ ": commit runs only cleanups")
        [ "cleanup-2"; "cleanup-1" ]
        (List.rev !trace))
    semantics

let test_stm_usable_after_exhaustion () =
  (* Too_many_attempts must leave no residue: subsequent transactions
     run normally. *)
  let stm = S.create ~max_attempts:3 () in
  let v = S.tvar stm 7 in
  (try S.atomically stm (fun tx -> S.abort tx)
   with S.Too_many_attempts _ -> ());
  Alcotest.(check int) "still working" 7
    (S.atomically stm (fun tx -> S.read tx v));
  S.atomically stm (fun tx -> S.write tx v 8);
  Alcotest.(check int) "writes still commit" 8
    (S.atomically stm (fun tx -> S.read tx v))

let test_injected_raises_on_list_operations () =
  (* Abort a structural insert halfway (after find, during decision):
     the list must stay well-formed and retain its contents. *)
  for seed = 1 to 10 do
    let stm = S.create () in
    let t = LS.create stm in
    for i = 0 to 9 do
      ignore (LS.add t (2 * i))
    done;
    let rng = Polytm_util.Rng.create (seed * 3) in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 2 (fun _ () ->
                 for _ = 1 to 6 do
                   let k = Polytm_util.Rng.int rng 20 in
                   try
                     S.atomically stm (fun tx ->
                         match LS.find tx t k with
                         | ptr, cur ->
                             if Polytm_util.Rng.bool rng then raise Injected;
                             (match cur with
                             | LS.Node { value; _ } when value = k -> ()
                             | cur ->
                                 S.write tx ptr
                                   (LS.Node { value = k; next = S.tvar stm cur })))
                   with Injected -> ()
                 done)))
    in
    let l = LS.to_list t in
    Alcotest.(check (list int)) "sorted unique" (List.sort_uniq compare l) l;
    List.iter
      (fun i ->
        Alcotest.(check bool)
          (Printf.sprintf "original element %d survives" (2 * i))
          true
          (List.mem (2 * i) l))
      (List.init 10 Fun.id)
  done

(* Regression: hook vectors are pooled per thread and reused by any
   transaction a hook itself starts.  Every hook registered by the
   finished attempt must still run exactly once, in order, even when
   an earlier hook runs a transaction on the same STM (which re-arms
   the pooled vectors and registers hooks of its own). *)
let test_hook_running_transaction_keeps_remaining_hooks () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  let trace = ref [] in
  let log tag () = trace := tag :: !trace in
  let log_and_tx tag () =
    trace := tag :: !trace;
    S.atomically stm (fun tx ->
        S.on_cleanup tx (log (tag ^ "-inner"));
        S.write tx v (S.read tx v + 1))
  in
  (* Commit path: a finaliser that runs a transaction must not wipe
     the finalisers registered before it. *)
  S.atomically stm (fun tx ->
      S.on_cleanup tx (log "fin-1");
      S.on_cleanup tx (log_and_tx "fin-2");
      S.on_cleanup tx (log "fin-3");
      ignore (S.read tx v));
  Alcotest.(check (list string))
    "all finalisers run newest-first, nested tx hooks interleaved"
    [ "fin-3"; "fin-2"; "fin-2-inner"; "fin-1" ]
    (List.rev !trace);
  (* Abort path: a compensation that runs a transaction must not wipe
     the remaining compensations or the finalisers. *)
  trace := [];
  (try
     S.atomically stm (fun tx ->
         S.on_cleanup tx (log "cleanup-1");
         S.on_abort tx (log "undo-1");
         S.on_abort tx (log_and_tx "undo-2");
         S.on_abort tx (log "undo-3");
         raise Injected)
   with Injected -> ());
  Alcotest.(check (list string))
    "all compensations and finalisers survive a hook transaction"
    [ "undo-3"; "undo-2"; "undo-2-inner"; "undo-1"; "cleanup-1" ]
    (List.rev !trace);
  Alcotest.(check int) "hook transactions committed" 2
    (S.atomically stm (fun tx -> S.read tx v))

(* Abort accounting — history record, counters, telemetry — must be
   complete before the lifecycle hooks run: a hook may itself raise,
   and the attempt must not vanish from the books because of it.  The
   pre-fix ordering ran the hooks first, so a raising finaliser left
   stats.aborts and the telemetry [Abort] event behind. *)
let test_abort_accounting_precedes_hooks () =
  let module T = Polytm_telemetry in
  let recorder = T.Recorder.create () in
  let stm = S.create () in
  S.set_sink stm (Some (T.Recorder.sink recorder));
  let v = S.tvar stm 0 in
  let escaped =
    match
      S.atomically stm (fun tx ->
          S.on_cleanup tx (fun () -> raise Exit);
          S.write tx v 1;
          raise Not_found)
    with
    | () -> None
    | exception e -> Some e
  in
  Alcotest.(check bool) "an exception escaped" true (escaped <> None);
  let st = S.stats stm in
  Alcotest.(check int) "abort counted despite raising finaliser" 1 st.S.aborts;
  Alcotest.(check int) "attributed to Explicit" 1 st.S.explicit_aborts;
  let abort_recorded =
    List.exists
      (fun (e : T.event) ->
        match e.T.kind with
        | T.Abort { cause = T.Explicit; _ } -> true
        | _ -> false)
      (T.Recorder.events recorder)
  in
  Alcotest.(check bool) "Abort event emitted before the hook blew up" true
    abort_recorded;
  Alcotest.(check int) "effects discarded" 0
    (S.atomically stm (fun tx -> S.read tx v))

(* The irrevocable path must keep the same books as the optimistic
   one: an explicit abort (forbidden, surfaced as Invalid_operation)
   and a user exception each count one attributed abort, run the
   hooks, release the serialization token, and discard effects. *)
let test_irrevocable_abort_accounting () =
  let stm = S.create () in
  let v = S.tvar stm 5 in
  let cleanups = ref 0 in
  (try
     S.atomically stm ~irrevocable:true (fun tx ->
         S.on_cleanup tx (fun () -> incr cleanups);
         S.write tx v 9;
         S.abort tx)
   with S.Invalid_operation _ -> ());
  let st = S.stats stm in
  Alcotest.(check int) "explicit abort counted" 1 st.S.aborts;
  Alcotest.(check int) "attributed to Explicit" 1 st.S.explicit_aborts;
  Alcotest.(check int) "finaliser ran" 1 !cleanups;
  (try
     S.atomically stm ~irrevocable:true (fun tx ->
         S.write tx v 9;
         raise Injected)
   with Injected -> ());
  Alcotest.(check int) "user exception counted too" 2 (S.stats stm).S.aborts;
  Alcotest.(check int) "effects discarded" 5
    (S.atomically stm (fun tx -> S.read tx v));
  (* A fresh irrevocable transaction still commits: the token was
     released on both abort paths (it would stall here forever
     otherwise). *)
  S.atomically stm ~irrevocable:true (fun tx -> S.write tx v 6);
  Alcotest.(check int) "token released, serial mode usable" 6
    (S.atomically stm (fun tx -> S.read tx v))

(* Property: under CM kills, budget exhaustions and serial fallbacks —
   random contention policy, tiny retry budget, seeded random
   scheduler — every increment commits exactly once (the serialize
   fallback guarantees progress), every lock word ends [Unlocked], and
   the final state matches the sequential oracle. *)
let liveness_stress_property =
  let open Polytm.Contention in
  let case_gen =
    QCheck.Gen.(
      triple (int_range 1 1_000)
        (oneofl [ Greedy; default_adaptive; default ])
        (int_range 1 4))
  in
  QCheck.Test.make ~count:40
    ~name:"liveness stress: exact oracle + all locks released"
    (QCheck.make
       ~print:(fun (seed, cm, ma) ->
         Printf.sprintf "seed=%d cm=%s max_attempts=%d" seed (to_string cm) ma)
       case_gen)
    (fun (seed, cm, max_attempts) ->
      let stm = S.create ~cm ~max_attempts () in
      let n = 4 in
      let accounts = Array.init n (fun _ -> S.tvar stm 0) in
      let threads = 4 and ops = 8 in
      let (), _ =
        Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
            R.parallel
              (List.init threads (fun t () ->
                   let rng = Polytm_util.Rng.create ((seed * 31) + t) in
                   for _ = 1 to ops do
                     let i = Polytm_util.Rng.int rng n in
                     S.atomically stm (fun tx ->
                         S.write tx accounts.(i) (S.read tx accounts.(i) + 1))
                   done)))
      in
      let total =
        S.atomically stm (fun tx ->
            Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
      in
      let locks_free = Array.for_all (fun a -> not (S.tvar_locked a)) accounts in
      total = threads * ops && locks_free)

let suite =
  ( "failure-injection",
    [
      Alcotest.test_case "random raises conserve money" `Quick
        test_random_raises_conserve_money;
      Alcotest.test_case "raise inside nested block" `Quick
        test_raise_inside_nested_block;
      Alcotest.test_case "raise in orelse branch" `Quick
        test_raise_in_orelse_branches;
      Alcotest.test_case "boosted ops compensated on raise" `Quick
        test_raise_after_boosted_ops_compensates;
      Alcotest.test_case "hook ordering on injected raise" `Quick
        test_hook_ordering_on_injected_raise;
      Alcotest.test_case "hook running a transaction keeps remaining hooks"
        `Quick test_hook_running_transaction_keeps_remaining_hooks;
      Alcotest.test_case "usable after exhaustion" `Quick
        test_stm_usable_after_exhaustion;
      Alcotest.test_case "list ops aborted midway" `Quick
        test_injected_raises_on_list_operations;
      Alcotest.test_case "abort accounting precedes hooks" `Quick
        test_abort_accounting_precedes_hooks;
      Alcotest.test_case "irrevocable abort accounting" `Quick
        test_irrevocable_abort_accounting;
      Test_seed.to_alcotest liveness_stress_property;
    ] )
