(* Tests for the discrete-event simulator: scheduling policies, virtual
   clocks, spawn/join, deadlock detection, determinism, and the
   Sim_runtime atomic semantics. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim

let test_empty_run () =
  let v, info = Sim.run (fun () -> 42) in
  Alcotest.(check int) "result" 42 v;
  Alcotest.(check int) "makespan" 0 info.Sim.makespan

let test_tick_advances_clock () =
  let (), info =
    Sim.run (fun () ->
        Sim.tick 5;
        Sim.tick 7;
        Alcotest.(check int) "now" 12 (Sim.now ()))
  in
  Alcotest.(check int) "makespan" 12 info.Sim.makespan;
  Alcotest.(check int) "steps" 2 info.Sim.steps

let test_spawn_join () =
  let log = ref [] in
  let (), _ =
    Sim.run (fun () ->
        let t1 =
          Sim.spawn (fun () ->
              Sim.tick 1;
              log := 1 :: !log)
        in
        let t2 =
          Sim.spawn (fun () ->
              Sim.tick 2;
              log := 2 :: !log)
        in
        Sim.join t1;
        Sim.join t2;
        log := 0 :: !log)
  in
  Alcotest.(check (list int)) "order: t1 (clock 1), t2 (clock 2), main" [ 0; 2; 1 ]
    !log

let test_event_policy_parallel_time () =
  (* Two threads each doing 10 ticks of 1: virtual threads overlap, so
     the makespan is 10, not 20. *)
  let (), info =
    Sim.run (fun () ->
        let body () =
          for _ = 1 to 10 do
            Sim.tick 1
          done
        in
        let t1 = Sim.spawn body and t2 = Sim.spawn body in
        Sim.join t1;
        Sim.join t2)
  in
  Alcotest.(check int) "makespan overlaps" 10 info.Sim.makespan

let test_event_policy_min_clock_order () =
  (* A slow thread and a fast thread: completions interleave by clock. *)
  let log = ref [] in
  let (), _ =
    Sim.run (fun () ->
        let slow =
          Sim.spawn (fun () ->
              Sim.tick 10;
              log := `Slow :: !log)
        in
        let fast =
          Sim.spawn (fun () ->
              for i = 1 to 3 do
                Sim.tick 2;
                log := `Fast i :: !log
              done)
        in
        Sim.join slow;
        Sim.join fast)
  in
  Alcotest.(check bool) "fast events precede slow" true
    (!log = [ `Slow; `Fast 3; `Fast 2; `Fast 1 ])

let test_deadlock_detected () =
  (* Two threads joining each other can't be expressed (join takes a
     tid created later), but a thread joining itself deadlocks. *)
  let deadlocks =
    try
      let (), _ =
        Sim.run (fun () ->
            let cell = ref (-1) in
            let t =
              Sim.spawn (fun () ->
                  Sim.tick 1;
                  Sim.join !cell)
            in
            cell := t;
            Sim.join t)
      in
      false
    with Sim.Deadlock _ -> true
  in
  Alcotest.(check bool) "self-join deadlocks" true deadlocks

let test_exception_propagates () =
  Alcotest.check_raises "child exception surfaces" Exit (fun () ->
      let (), _ =
        Sim.run (fun () ->
            let t = Sim.spawn (fun () -> raise Exit) in
            Sim.join t)
      in
      ())

let test_nested_run_rejected () =
  Alcotest.check_raises "no nesting"
    (Invalid_argument "Sim.run: runs must not nest") (fun () ->
      let (), _ = Sim.run (fun () -> ignore (Sim.run (fun () -> ()))) in
      ())

let test_random_policy_deterministic_per_seed () =
  let program () =
    let log = ref [] in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched 99) (fun () ->
          let mk name () =
            for i = 1 to 3 do
              Sim.tick 1;
              log := (name, i) :: !log
            done
          in
          let a = Sim.spawn (mk "a") and b = Sim.spawn (mk "b") in
          Sim.join a;
          Sim.join b)
    in
    !log
  in
  Alcotest.(check bool) "same seed, same schedule" true (program () = program ())

let test_random_policies_differ_across_seeds () =
  let program seed =
    let log = ref [] in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let mk name () =
            for i = 1 to 5 do
              Sim.tick 1;
              log := (name, i) :: !log
            done
          in
          let a = Sim.spawn (mk "a") and b = Sim.spawn (mk "b") in
          Sim.join a;
          Sim.join b)
    in
    !log
  in
  let distinct =
    List.sort_uniq compare (List.map program [ 1; 2; 3; 4; 5; 6; 7; 8 ])
  in
  Alcotest.(check bool) "seeds explore several schedules" true
    (List.length distinct > 1)

let test_atomic_get_set () =
  let a = R.atomic 1 in
  Alcotest.(check int) "initial" 1 (R.get a);
  R.set a 7;
  Alcotest.(check int) "after set" 7 (R.get a)

let test_atomic_cas () =
  let a = R.atomic 1 in
  Alcotest.(check bool) "cas succeeds" true (R.cas a 1 2);
  Alcotest.(check bool) "cas fails" false (R.cas a 1 3);
  Alcotest.(check int) "value" 2 (R.get a)

let test_fetch_and_add () =
  let a = R.atomic 10 in
  Alcotest.(check int) "faa returns old" 10 (R.fetch_and_add a 5);
  Alcotest.(check int) "value" 15 (R.get a)

let test_counter_uncharged () =
  let c = R.counter () in
  let (), info =
    Sim.run (fun () ->
        R.add_counter c 3;
        R.add_counter c 4)
  in
  Alcotest.(check int) "counter" 7 (R.read_counter c);
  Alcotest.(check int) "no virtual time" 0 info.Sim.makespan

let test_accesses_charged () =
  let a = R.atomic 0 in
  let (), info =
    Sim.run (fun () ->
        ignore (R.get a);
        R.set a 1;
        ignore (R.cas a 1 2);
        ignore (R.fetch_and_add a 1))
  in
  let c = Sim.default_costs in
  Alcotest.(check int) "cost model applied"
    (c.Sim.get + c.Sim.set + c.Sim.cas + c.Sim.faa)
    info.Sim.makespan

let test_parallel_increments_lost_update () =
  (* Plain get/set increments from concurrent threads must lose updates
     under some random schedule — evidence that the simulator really
     interleaves at access granularity. *)
  let lost = ref false in
  let seed = ref 0 in
  while (not !lost) && !seed < 50 do
    incr seed;
    let a = R.atomic 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched !seed) (fun () ->
          R.parallel
            (List.init 2 (fun _ () ->
                 for _ = 1 to 5 do
                   R.set a (R.get a + 1)
                 done)))
    in
    if R.get a < 10 then lost := true
  done;
  Alcotest.(check bool) "a lost update was observed" true !lost

let test_cas_increments_never_lost () =
  for seed = 1 to 20 do
    let a = R.atomic 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun _ () ->
                 for _ = 1 to 5 do
                   let rec retry () =
                     let v = R.get a in
                     if not (R.cas a v (v + 1)) then retry ()
                   in
                   retry ()
                 done)))
    in
    Alcotest.(check int) "cas loop is atomic" 15 (R.get a)
  done

let test_spinlock_mutual_exclusion () =
  let module L = Polytm_runtime.Spinlock.Make (R) in
  for seed = 1 to 20 do
    let lock = L.create () in
    let inside = R.atomic 0 in
    let max_inside = ref 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun _ () ->
                 for _ = 1 to 3 do
                   L.with_lock lock (fun () ->
                       let v = R.fetch_and_add inside 1 + 1 in
                       if v > !max_inside then max_inside := v;
                       ignore (R.fetch_and_add inside (-1)))
                 done)))
    in
    Alcotest.(check int) "never two inside" 1 !max_inside
  done

let test_makespan_counts_spin_waste () =
  (* Two threads contending on one lock serialise: makespan reflects
     the serialisation, exceeding the single-thread critical-path. *)
  let module L = Polytm_runtime.Spinlock.Make (R) in
  let lock = L.create () in
  let work () =
    L.with_lock lock (fun () ->
        for _ = 1 to 50 do
          Sim.tick 1
        done)
  in
  let (), info =
    Sim.run (fun () -> R.parallel [ work; work ])
  in
  Alcotest.(check bool) "serialised critical sections" true
    (info.Sim.makespan >= 100)

let test_custom_costs () =
  let costs = { Sim.default_costs with Sim.get = 10; set = 20 } in
  let a = R.atomic 0 in
  let (), info =
    Sim.run ~costs (fun () ->
        ignore (R.get a);
        R.set a 1)
  in
  Alcotest.(check int) "custom cost model applied" 30 info.Sim.makespan;
  Alcotest.(check (int)) "current_costs outside run falls back"
    Sim.default_costs.Sim.get (Sim.current_costs ()).Sim.get

let test_step_limit () =
  let hit =
    try
      let (), _ =
        Sim.run ~step_limit:10 (fun () ->
            for _ = 1 to 100 do
              Sim.tick 1
            done)
      in
      false
    with Sim.Step_limit_exceeded -> true
  in
  Alcotest.(check bool) "step limit enforced" true hit

let test_scripted_invalid_choice_rejected () =
  let program () =
    let body () = Sim.tick 1 in
    let t1 = Sim.spawn body and t2 = Sim.spawn body in
    Sim.join t1;
    Sim.join t2
  in
  let rejected =
    try
      let (), _ = Sim.run ~policy:(Sim.Scripted [| 99 |]) program in
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unknown tid rejected" true rejected

let test_trace_records_decisions () =
  let (), info =
    Sim.run ~policy:(Sim.Random_sched 3) ~record_trace:true (fun () ->
        let body () = Sim.tick 1 in
        let t1 = Sim.spawn body and t2 = Sim.spawn body in
        Sim.join t1;
        Sim.join t2)
  in
  Alcotest.(check bool) "some decisions recorded" true
    (List.length info.Sim.trace > 0);
  List.iter
    (fun d ->
      Alcotest.(check bool) "chosen among ready" true
        (List.mem d.Sim.chosen d.Sim.ready);
      Alcotest.(check bool) "ready sorted" true
        (List.sort compare d.Sim.ready = d.Sim.ready))
    info.Sim.trace

let test_spinlock_try_lock () =
  let module L = Polytm_runtime.Spinlock.Make (R) in
  let l = L.create () in
  Alcotest.(check bool) "try_lock free" true (L.try_lock l);
  Alcotest.(check bool) "try_lock busy" false (L.try_lock l);
  Alcotest.(check bool) "is_locked" true (L.is_locked l);
  L.unlock l;
  Alcotest.(check bool) "free again" true (L.try_lock l)

let test_tls_per_thread () =
  let slot = R.tls (fun () -> -1) in
  let seen = ref [] in
  let (), _ =
    Sim.run (fun () ->
        R.parallel
          (List.init 3 (fun i () ->
               R.tls_set slot i;
               Sim.tick 5;
               seen := R.tls_get slot :: !seen)))
  in
  Alcotest.(check (list int)) "each thread sees its own value" [ 0; 1; 2 ]
    (List.sort compare !seen)

let suite =
  ( "sim",
    [
      Alcotest.test_case "empty run" `Quick test_empty_run;
      Alcotest.test_case "tick advances clock" `Quick test_tick_advances_clock;
      Alcotest.test_case "spawn and join" `Quick test_spawn_join;
      Alcotest.test_case "virtual parallelism" `Quick test_event_policy_parallel_time;
      Alcotest.test_case "min-clock ordering" `Quick test_event_policy_min_clock_order;
      Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
      Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
      Alcotest.test_case "nested runs rejected" `Quick test_nested_run_rejected;
      Alcotest.test_case "random policy deterministic" `Quick
        test_random_policy_deterministic_per_seed;
      Alcotest.test_case "random seeds explore" `Quick
        test_random_policies_differ_across_seeds;
      Alcotest.test_case "atomic get/set" `Quick test_atomic_get_set;
      Alcotest.test_case "atomic cas" `Quick test_atomic_cas;
      Alcotest.test_case "fetch-and-add" `Quick test_fetch_and_add;
      Alcotest.test_case "counters uncharged" `Quick test_counter_uncharged;
      Alcotest.test_case "accesses charged" `Quick test_accesses_charged;
      Alcotest.test_case "lost updates happen" `Quick
        test_parallel_increments_lost_update;
      Alcotest.test_case "cas loop atomic" `Quick test_cas_increments_never_lost;
      Alcotest.test_case "spinlock mutual exclusion" `Quick
        test_spinlock_mutual_exclusion;
      Alcotest.test_case "makespan counts contention" `Quick
        test_makespan_counts_spin_waste;
      Alcotest.test_case "custom costs" `Quick test_custom_costs;
      Alcotest.test_case "step limit" `Quick test_step_limit;
      Alcotest.test_case "scripted invalid choice" `Quick
        test_scripted_invalid_choice_rejected;
      Alcotest.test_case "trace records decisions" `Quick
        test_trace_records_decisions;
      Alcotest.test_case "spinlock try_lock" `Quick test_spinlock_try_lock;
      Alcotest.test_case "tls per thread" `Quick test_tls_per_thread;
    ] )
