(* Tests for the stack pair: the Treiber lock-free baseline and the
   transactional stack, including the composition contrast (atomic
   pop_push) and exhaustive model checking of the Treiber CAS loops. *)

module R = Polytm_runtime.Sim_runtime
module Sim = Polytm_runtime.Sim
module Explore = Polytm_runtime.Explore
module S = Polytm.Stm.Make (Polytm_runtime.Sim_runtime)
module T = Polytm_structs.Treiber_stack.Make (Polytm_runtime.Sim_runtime)
module K = Polytm_structs.Stm_stack.Make (S)

(* --- Treiber ------------------------------------------------------------- *)

let test_treiber_lifo () =
  let t = T.create () in
  List.iter (T.push t) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "peek" (Some 3) (T.peek t);
  Alcotest.(check (option int)) "pop 3" (Some 3) (T.pop t);
  Alcotest.(check (option int)) "pop 2" (Some 2) (T.pop t);
  T.push t 9;
  Alcotest.(check (list int)) "contents" [ 9; 1 ] (T.to_list t);
  Alcotest.(check int) "length" 2 (T.length t);
  Alcotest.(check (option int)) "pop 9" (Some 9) (T.pop t);
  Alcotest.(check (option int)) "pop 1" (Some 1) (T.pop t);
  Alcotest.(check (option int)) "empty" None (T.pop t)

let test_treiber_concurrent_push_pop () =
  for seed = 1 to 10 do
    let t = T.create () in
    let popped = ref [] in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            [
              (fun () ->
                for i = 1 to 10 do
                  T.push t i
                done);
              (fun () ->
                let got = ref 0 in
                while !got < 10 do
                  match T.pop t with
                  | Some x ->
                      popped := x :: !popped;
                      incr got
                  | None -> Sim.yield ()
                done);
            ])
    in
    Alcotest.(check int) "all popped" 10 (List.length !popped);
    Alcotest.(check (list int)) "each element exactly once"
      (List.init 10 (fun i -> i + 1))
      (List.sort compare !popped);
    Alcotest.(check int) "stack empty" 0 (T.length t)
  done

let test_treiber_exhaustive () =
  (* Two pushers and a popper over tiny runs: every schedule must
     conserve elements. *)
  let program () =
    let t = T.create () in
    let t1 = Sim.spawn (fun () -> T.push t 1) in
    let t2 = Sim.spawn (fun () -> T.push t 2) in
    Sim.join t1;
    Sim.join t2;
    let a = T.pop t and b = T.pop t in
    assert (
      match (a, b) with
      | Some 1, Some 2 | Some 2, Some 1 -> true
      | _ -> false);
    assert (T.pop t = None)
  in
  let outcome =
    Explore.check ~max_executions:50_000 ~max_depth:40 ~step_limit:1_000
      program
  in
  Alcotest.(check bool) "complete" false outcome.Explore.truncated

(* --- STM stack ----------------------------------------------------------- *)

let test_stm_stack_lifo () =
  let stm = S.create () in
  let t = K.create stm in
  List.iter (K.push t) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop" (Some 3) (K.pop t);
  Alcotest.(check int) "length" 2 (K.length t);
  Alcotest.(check (list int)) "contents" [ 2; 1 ] (K.to_list t)

let test_stm_stack_concurrent () =
  for seed = 1 to 10 do
    let stm = S.create () in
    let t = K.create stm in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          R.parallel
            (List.init 3 (fun p () ->
                 for i = 1 to 5 do
                   K.push t ((p * 10) + i)
                 done)))
    in
    Alcotest.(check int) "15 elements" 15 (K.length t);
    (* LIFO per producer. *)
    List.iter
      (fun p ->
        let mine = List.filter (fun x -> x / 10 = p) (K.to_list t) in
        Alcotest.(check (list int))
          (Printf.sprintf "producer %d order" p)
          [ (p * 10) + 5; (p * 10) + 4; (p * 10) + 3; (p * 10) + 2; (p * 10) + 1 ]
          mine)
      [ 0; 1; 2 ]
  done

let test_pop_push_atomic () =
  (* An observer must always see exactly 5 elements across both stacks
     while pop_push migrates them one at a time. *)
  for seed = 1 to 10 do
    let stm = S.create () in
    let src = K.create stm and dst = K.create stm in
    List.iter (K.push src) [ 1; 2; 3; 4; 5 ];
    let bad = ref 0 in
    let (), _ =
      Sim.run ~policy:(Sim.Random_sched seed) (fun () ->
          let mover =
            Sim.spawn (fun () ->
                while K.pop_push ~src ~dst <> None do
                  Sim.yield ()
                done)
          in
          let observer =
            Sim.spawn (fun () ->
                for _ = 1 to 5 do
                  let total =
                    S.atomically stm (fun _tx -> K.length src + K.length dst)
                  in
                  if total <> 5 then incr bad
                done)
          in
          Sim.join mover;
          Sim.join observer)
    in
    Alcotest.(check int) "element count invariant" 0 !bad;
    Alcotest.(check (list int)) "migration reverses order" [ 1; 2; 3; 4; 5 ]
      (K.to_list dst)
  done

let suite =
  ( "stacks",
    [
      Alcotest.test_case "treiber lifo" `Quick test_treiber_lifo;
      Alcotest.test_case "treiber concurrent" `Quick
        test_treiber_concurrent_push_pop;
      Alcotest.test_case "treiber exhaustive" `Quick test_treiber_exhaustive;
      Alcotest.test_case "stm stack lifo" `Quick test_stm_stack_lifo;
      Alcotest.test_case "stm stack concurrent" `Quick test_stm_stack_concurrent;
      Alcotest.test_case "pop_push atomic" `Quick test_pop_push_atomic;
    ] )
