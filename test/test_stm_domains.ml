(* Preemptive stress tests of the STM over real OCaml domains.  The
   machine may have any number of cores (this container has one); OS
   preemption still interleaves domains at arbitrary points, so these
   tests exercise genuine racy executions of the same functor code the
   simulator runs deterministically. *)

module D = Polytm_runtime.Domain_runtime
module S = Polytm.Stm.Make (Polytm_runtime.Domain_runtime)
open Polytm

let domains = 4

let test_counter_increments () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  let per = 200 in
  D.parallel
    (List.init domains (fun _ () ->
         for _ = 1 to per do
           S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
         done));
  Alcotest.(check int) "no lost updates" (domains * per)
    (S.atomically stm (fun tx -> S.read tx v));
  let st = S.stats stm in
  Alcotest.(check int) "commits" (domains * per + 1) st.S.commits

let test_bank_conservation () =
  let stm = S.create () in
  let n = 8 in
  let accounts = Array.init n (fun _ -> S.tvar stm 1000) in
  D.parallel
    (List.init domains (fun t () ->
         let rng = Polytm_util.Rng.create (t + 1) in
         for _ = 1 to 150 do
           let src = Polytm_util.Rng.int rng n
           and dst = Polytm_util.Rng.int rng n
           and amount = Polytm_util.Rng.int rng 50 in
           S.atomically stm (fun tx ->
               let s = S.read tx accounts.(src) in
               S.write tx accounts.(src) (s - amount);
               let d = S.read tx accounts.(dst) in
               S.write tx accounts.(dst) (d + amount))
         done));
  let total =
    S.atomically stm (fun tx ->
        Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
  in
  Alcotest.(check int) "money conserved" (n * 1000) total

let test_mixed_semantics_under_domains () =
  (* Elastic updaters, classic updaters and snapshot readers hammer the
     same cells; the final sum must equal the number of increments and
     every snapshot must read a sum that some prefix of increments
     could produce (0 <= sum <= total). *)
  let stm = S.create () in
  let cells = Array.init 4 (fun _ -> S.tvar stm 0) in
  let per = 100 in
  let bad_snapshot = Atomic.make 0 in
  D.parallel
    ([
       (fun () ->
         for _ = 1 to per * 2 do
           match
             S.atomically stm ~sem:Semantics.Snapshot (fun tx ->
                 Array.fold_left (fun acc c -> acc + S.read tx c) 0 cells)
           with
           | sum ->
               if sum < 0 || sum > 2 * domains * per then
                 Atomic.incr bad_snapshot
           | exception S.Too_many_attempts _ -> ()
         done);
     ]
    @ List.init 2 (fun i () ->
          let sem = if i = 0 then Semantics.Classic else Semantics.Elastic in
          for k = 1 to per do
            S.atomically stm ~sem (fun tx ->
                let c = cells.(k mod 4) in
                S.write tx c (S.read tx c + 1))
          done));
  let total =
    S.atomically stm (fun tx ->
        Array.fold_left (fun acc c -> acc + S.read tx c) 0 cells)
  in
  Alcotest.(check int) "all increments applied" (2 * per) total;
  Alcotest.(check int) "snapshots always plausible" 0 (Atomic.get bad_snapshot)

let test_greedy_under_domains () =
  let stm = S.create ~cm:Contention.Greedy () in
  let v = S.tvar stm 0 in
  let per = 100 in
  D.parallel
    (List.init domains (fun _ () ->
         for _ = 1 to per do
           S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
         done));
  Alcotest.(check int) "greedy: no lost updates" (domains * per)
    (S.atomically stm (fun tx -> S.read tx v))

let test_adaptive_serial_fallback_under_domains () =
  (* A tiny retry budget under real preemption forces the serial
     fallback constantly; every increment must still commit exactly
     once, no exhaustion may escape, and every lock word must end up
     released. *)
  let stm = S.create ~cm:Contention.default_adaptive ~max_attempts:2 () in
  let v = S.tvar stm 0 in
  let per = 100 in
  let escapes = Atomic.make 0 in
  D.parallel
    (List.init domains (fun _ () ->
         for _ = 1 to per do
           try S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
           with S.Too_many_attempts _ -> Atomic.incr escapes
         done));
  Alcotest.(check int) "no exhaustion escapes" 0 (Atomic.get escapes);
  Alcotest.(check int) "adaptive: no lost updates" (domains * per)
    (S.atomically stm (fun tx -> S.read tx v));
  Alcotest.(check bool) "lock released" false (S.tvar_locked v);
  let st = S.stats stm in
  Alcotest.(check bool)
    (Printf.sprintf "books balance (%d serial of %d commits)"
       st.S.serial_commits st.S.commits)
    true
    (st.S.serial_commits <= st.S.commits
    && st.S.budget_exhaustions <= st.S.aborts)

let test_list_set_under_domains () =
  let module LS = Polytm_structs.Stm_list_set.Make (S) in
  let stm = S.create () in
  let t = LS.create ~parse_sem:Semantics.Elastic ~size_sem:Semantics.Snapshot stm in
  let threads = 4 and per = 32 in
  D.parallel
    (List.init threads (fun d () ->
         for i = 0 to per - 1 do
           let key = (i * threads) + d in
           ignore (LS.add t key);
           if i mod 4 = 0 then ignore (LS.remove t key)
         done));
  let expected =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun i -> if i mod 4 = 0 then None else Some ((i * threads) + d))
          (List.init per Fun.id))
      (List.init threads Fun.id)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "elastic list under domains" expected
    (LS.to_list t)

let test_map_under_domains () =
  let module M = Polytm_structs.Stm_map.Make (S) in
  let stm = S.create () in
  let m = M.create ~size_sem:Semantics.Snapshot stm in
  let threads = 4 and per = 40 in
  D.parallel
    (List.init threads (fun d () ->
         for i = 0 to per - 1 do
           ignore (M.add m ((i * threads) + d) d)
         done));
  Alcotest.(check int) "all bindings present" (threads * per) (M.size m);
  Alcotest.(check bool) "AVL invariants hold" true (M.invariants_hold m)

(* The skiplist, queue and stack run through the full conformance
   pipeline under real domains: recorded histories from preemptive
   interleavings must check out linearizable.  Fixed seeds keep the
   workloads reproducible (interleavings stay racy by nature — any
   of them must pass). *)
let conformance_under_domains name () =
  match
    Polytm_bench_kit.Conformance.run_domains ~threads:3 ~ops:12 ~name ~seed:42
      ~iters:4 ()
  with
  | Polytm_bench_kit.Conformance.Pass _ -> ()
  | Polytm_bench_kit.Conformance.Fail msg -> Alcotest.fail msg

let test_irrevocable_under_domains () =
  let stm = S.create () in
  let v = S.tvar stm 0 in
  let side_effects = Atomic.make 0 in
  D.parallel
    (List.init 4 (fun d () ->
         if d = 0 then
           S.atomically ~irrevocable:true stm (fun tx ->
               Atomic.incr side_effects;
               S.write tx v (S.read tx v + 1000))
         else
           for _ = 1 to 100 do
             S.atomically stm (fun tx -> S.write tx v (S.read tx v + 1))
           done));
  Alcotest.(check int) "irrevocable body ran once" 1 (Atomic.get side_effects);
  Alcotest.(check int) "all updates applied" 1300
    (S.atomically stm (fun tx -> S.read tx v))

let suite =
  ( "stm-domains",
    [
      Alcotest.test_case "counter increments" `Quick test_counter_increments;
      Alcotest.test_case "bank conservation" `Quick test_bank_conservation;
      Alcotest.test_case "mixed semantics" `Quick test_mixed_semantics_under_domains;
      Alcotest.test_case "greedy policy" `Quick test_greedy_under_domains;
      Alcotest.test_case "adaptive serial fallback" `Quick
        test_adaptive_serial_fallback_under_domains;
      Alcotest.test_case "elastic list" `Quick test_list_set_under_domains;
      Alcotest.test_case "avl map" `Quick test_map_under_domains;
      Alcotest.test_case "irrevocable" `Quick test_irrevocable_under_domains;
      Alcotest.test_case "skiplist conformance" `Quick
        (conformance_under_domains "stm-skiplist");
      Alcotest.test_case "queue conformance" `Quick
        (conformance_under_domains "stm-queue");
      Alcotest.test_case "stack conformance" `Quick
        (conformance_under_domains "stm-stack");
    ] )
